package graph

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// grafEqual asserts that two graphs expose identical structure through
// the public accessors, bit-identical weights included.
func grafEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumArcs() != want.NumArcs() ||
		got.Directed() != want.Directed() || got.Weighted() != want.Weighted() {
		t.Fatalf("summary mismatch: %v vs %v", got, want)
	}
	for u := 0; u < want.NumVertices(); u++ {
		id := VertexID(u)
		checkSame(t, "out", want.OutNeighbors(id), got.OutNeighbors(id),
			want.OutWeights(id), got.OutWeights(id))
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("fingerprint mismatch: %x vs %x", got.Fingerprint(), want.Fingerprint())
	}
}

func TestGraphCodecRoundTrip(t *testing.T) {
	for name, g := range compactCorpus(t) {
		t.Run(name, func(t *testing.T) {
			enc := EncodeGraph(g)
			if enc2 := EncodeGraph(MustCompact(g)); !bytes.Equal(enc, enc2) {
				t.Fatal("flat and compact graphs must encode identically")
			}
			for _, mode := range []LoadMode{LoadFlat, LoadCompact} {
				dec, err := DecodeGraph(enc, mode)
				if err != nil {
					t.Fatalf("%v: %v", mode, err)
				}
				if dec.IsCompact() != (mode == LoadCompact) {
					t.Fatalf("%v: got repr %s", mode, dec.Repr())
				}
				grafEqual(t, g, dec)
				if !bytes.Equal(EncodeGraph(dec), enc) {
					t.Fatalf("%v: re-encode differs", mode)
				}
			}
		})
	}
}

func TestGraphFileRoundTrip(t *testing.T) {
	g := WithRandomWeights(RMAT(10, 8, 0.57, 0.19, 0.19, true, 3), 1, 10, 4)
	path := filepath.Join(t.TempDir(), "g.dvg")
	if err := WriteGraphFile(path, g); err != nil {
		t.Fatal(err)
	}
	if !IsGraphFile(path) {
		t.Fatal("IsGraphFile must recognize a DVGRAF file")
	}
	for _, mode := range []LoadMode{LoadFlat, LoadCompact, LoadMmap} {
		dec, err := ReadGraphFile(path, mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		grafEqual(t, g, dec)
		if mode == LoadMmap && runtime.GOOS == "linux" && !dec.Mapped() {
			t.Fatal("LoadMmap on linux must produce a mapped graph")
		}
		if dec.Mapped() {
			if dec.Repr() != "compact+mmap" {
				t.Fatalf("mapped Repr = %q", dec.Repr())
			}
			if err := dec.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		}
	}
}

func TestMappedGraphRuns(t *testing.T) {
	// A mapped graph must behave like any other compact graph end to
	// end: reverse materialization, delta application, re-encoding.
	g := RMAT(8, 6, 0.57, 0.19, 0.19, true, 12)
	path := filepath.Join(t.TempDir(), "g.dvg")
	if err := WriteGraphFile(path, g); err != nil {
		t.Fatal(err)
	}
	m, err := ReadGraphFile(path, LoadMmap)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.BuildReverse()
	g.BuildReverse()
	for u := 0; u < g.NumVertices(); u++ {
		checkSame(t, "in", g.InNeighbors(VertexID(u)), m.InNeighbors(VertexID(u)), nil, nil)
	}
	d := &Delta{}
	d.AddEdge(1, 2)
	want, _, err := ApplyDelta(g, d)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := ApplyDelta(m, d)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatal("delta on a mapped graph diverged")
	}
	if got.Mapped() {
		t.Fatal("ApplyDelta result must be heap-backed")
	}
}

func TestGraphDecodeRejectsEveryTruncation(t *testing.T) {
	g := WithRandomWeights(Grid(6, 7, 5, 2), 1, 9, 3)
	enc := EncodeGraph(g)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeGraph(enc[:cut], LoadCompact); err == nil {
			t.Fatalf("truncation to %d/%d bytes not rejected", cut, len(enc))
		} else if !errors.Is(err, ErrGraphCorrupt) && !errors.Is(err, ErrGraphVersion) {
			t.Fatalf("truncation to %d bytes: unexpected error class: %v", cut, err)
		}
	}
}

func TestGraphDecodeRejectsEveryBitflip(t *testing.T) {
	g := RMAT(6, 4, 0.57, 0.19, 0.19, true, 8)
	enc := EncodeGraph(g)
	for i := range enc {
		mut := append([]byte(nil), enc...)
		mut[i] ^= 0xff
		if _, err := DecodeGraph(mut, LoadFlat); err == nil {
			t.Fatalf("flipped byte %d/%d not rejected", i, len(enc))
		}
	}
}

func TestGraphDecodeRejectsWrongVersion(t *testing.T) {
	enc := EncodeGraph(Path(3, true))
	enc[6] = 2 // version field
	_, err := DecodeGraph(enc, LoadFlat)
	if !errors.Is(err, ErrGraphVersion) {
		t.Fatalf("want ErrGraphVersion, got %v", err)
	}
}

func TestGraphDecodeRejectsForgedChecksum(t *testing.T) {
	// Corrupt a stream byte and fix the CRC back up: the structural
	// walk must still reject what the checksum would have admitted.
	g := Star(40, true)
	enc := EncodeGraph(g)
	// Neighbour stream of the hub encodes 1,1,1,... (gaps); rewrite one
	// gap to jump past n.
	idx := bytes.LastIndexByte(enc[:len(enc)-4], 1)
	if idx < grafHeaderLen {
		t.Fatal("could not locate a stream byte")
	}
	enc[idx] = 0x7f
	reseal(enc)
	if _, err := DecodeGraph(enc, LoadFlat); !errors.Is(err, ErrGraphCorrupt) {
		t.Fatalf("forged image not rejected: %v", err)
	}
}

// reseal recomputes the trailing CRC after a deliberate mutation.
func reseal(enc []byte) {
	sum := crc32.ChecksumIEEE(enc[:len(enc)-4])
	enc[len(enc)-4] = byte(sum)
	enc[len(enc)-3] = byte(sum >> 8)
	enc[len(enc)-2] = byte(sum >> 16)
	enc[len(enc)-1] = byte(sum >> 24)
}

func TestGraphDecodeMmapModeRejected(t *testing.T) {
	if _, err := DecodeGraph(EncodeGraph(Path(3, true)), LoadMmap); err == nil {
		t.Fatal("DecodeGraph must reject LoadMmap")
	}
}

func TestIsGraphFileRejectsOtherFiles(t *testing.T) {
	path := filepath.Join(t.TempDir(), "edges.el")
	if err := os.WriteFile(path, []byte("0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if IsGraphFile(path) {
		t.Fatal("edge list misdetected as DVGRAF")
	}
	if IsGraphFile(filepath.Join(t.TempDir(), "missing.dvg")) {
		t.Fatal("missing file misdetected as DVGRAF")
	}
}

func TestGraphDecodeConvertFallback(t *testing.T) {
	// Force the explicit little-endian conversion path (what big-endian
	// hosts always run) and check it agrees with the aliasing path.
	g := WithRandomWeights(RMAT(7, 5, 0.57, 0.19, 0.19, false, 9), 1, 4, 2)
	enc := EncodeGraph(g)
	s, err := parseGraf(enc)
	if err != nil {
		t.Fatal(err)
	}
	converted, err := s.build(LoadCompact, false) // never aliases
	if err != nil {
		t.Fatal(err)
	}
	grafEqual(t, g, converted)
	if converted.Weighted() {
		for u := 0; u < g.NumVertices(); u++ {
			for i, w := range converted.OutWeights(VertexID(u)) {
				if math.Float64bits(w) != math.Float64bits(g.OutWeights(VertexID(u))[i]) {
					t.Fatalf("weight bits diverged at %d/%d", u, i)
				}
			}
		}
	}
}

func FuzzGraphDecode(f *testing.F) {
	for _, g := range []*Graph{
		Path(4, true),
		Star(6, false),
		WithRandomWeights(Grid(3, 3, 5, 1), 1, 3, 1),
		MustCompact(RMAT(5, 3, 0.57, 0.19, 0.19, true, 2)),
		NewBuilder(0, true).Finalize(),
	} {
		f.Add(EncodeGraph(g))
	}
	f.Add([]byte("DVGRAF"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, mode := range []LoadMode{LoadFlat, LoadCompact} {
			g, err := DecodeGraph(data, mode)
			if err != nil {
				continue
			}
			// Anything the decoder admits must be iterable and must
			// survive a re-encode/decode round trip unchanged.
			total := 0
			for u := 0; u < g.NumVertices(); u++ {
				it := g.OutArcs(VertexID(u))
				for it.Next() {
					if int(it.To()) >= g.NumVertices() {
						t.Fatalf("decoded neighbour %d out of range", it.To())
					}
					total++
				}
			}
			if total != g.NumArcs() {
				t.Fatalf("iterated %d arcs, graph claims %d", total, g.NumArcs())
			}
			re, err := DecodeGraph(EncodeGraph(g), mode)
			if err != nil {
				t.Fatalf("re-decode failed: %v", err)
			}
			if re.Fingerprint() != g.Fingerprint() {
				t.Fatal("round trip changed the graph")
			}
		}
	})
}
