package graph

import (
	"errors"
	"testing"
)

// A real overflow needs ~2 billion arcs (4 GiB of one-byte gaps), which
// no unit test can materialize; these tests lower maxCompactStream and
// construct streams that straddle the boundary exactly. Vertex 0 with
// out-neighbors 1..k encodes to exactly k bytes: the first neighbor is
// varint(1) and every later gap is varint(1), one byte each.
func withStreamLimit(t *testing.T, limit uint64) {
	t.Helper()
	old := maxCompactStream
	maxCompactStream = limit
	t.Cleanup(func() { maxCompactStream = old })
}

func fanOut(k int) *Graph {
	b := NewBuilder(k+1, true)
	for v := 1; v <= k; v++ {
		b.AddEdge(0, VertexID(v))
	}
	return b.Finalize()
}

func TestCompactOverflowTyped(t *testing.T) {
	withStreamLimit(t, 64)
	_, err := Compact(fanOut(65))
	if err == nil {
		t.Fatal("Compact of a 65-byte stream under a 64-byte limit must fail")
	}
	var ov *CompactOverflowError
	if !errors.As(err, &ov) {
		t.Fatalf("want *CompactOverflowError, got %T: %v", err, err)
	}
	if ov.Direction != "out" || ov.Vertex != 0 || ov.Bytes != 65 {
		t.Fatalf("overflow fields = %+v, want {out 0 65}", *ov)
	}
}

func TestCompactAtLimitRoundTrips(t *testing.T) {
	withStreamLimit(t, 64)
	g := fanOut(64) // exactly at the limit: must succeed, not off-by-one
	c, err := Compact(g)
	if err != nil {
		t.Fatalf("Compact at exactly the stream limit: %v", err)
	}
	if got, want := c.Fingerprint(), g.Fingerprint(); got != want {
		t.Fatalf("fingerprint changed across compact: %x vs %x", got, want)
	}
	it := c.OutArcs(0)
	for want := VertexID(1); want <= 64; want++ {
		if !it.Next() || it.To() != want {
			t.Fatalf("decode mismatch at neighbor %d", want)
		}
	}
}

func TestCompactOverflowInDirection(t *testing.T) {
	withStreamLimit(t, 64)
	// 33 sources at 128·i each with one arc into vertex 0: every out-list
	// is varint(0) = 1 byte (33 total, fits), but vertex 0's in-list is 33
	// two-byte values (first neighbor 128, then gaps of 128) = 66 bytes.
	b := NewBuilder(33*128+1, true)
	for i := 1; i <= 33; i++ {
		b.AddEdge(VertexID(i*128), 0)
	}
	g := b.Finalize()
	g.BuildReverse()
	_, err := Compact(g)
	var ov *CompactOverflowError
	if !errors.As(err, &ov) {
		t.Fatalf("want *CompactOverflowError, got %v", err)
	}
	if ov.Direction != "in" || ov.Vertex != 0 || ov.Bytes != 66 {
		t.Fatalf("overflow fields = %+v, want {in 0 66}", *ov)
	}
}

func TestBuilderCompactOverflowTyped(t *testing.T) {
	withStreamLimit(t, 64)
	b := NewBuilder(66, true)
	for v := 1; v <= 65; v++ {
		b.AddEdge(0, VertexID(v))
	}
	_, err := b.Compact()
	var ov *CompactOverflowError
	if !errors.As(err, &ov) {
		t.Fatalf("Builder.Compact: want *CompactOverflowError, got %v", err)
	}
}

func TestBuilderCompactOK(t *testing.T) {
	b := NewBuilder(4, false)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g, err := b.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsCompact() {
		t.Fatal("Builder.Compact must return a compact graph")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
}

func TestLazyReverseOverflowPanicsTyped(t *testing.T) {
	withStreamLimit(t, 96)
	// Sources 128·i → 0 keep every out-list at one byte (varint(0)), but
	// vertex 0's deferred in-list is 65 two-byte gaps = 130 bytes. Compact
	// succeeds (out fits, reverse deferred); the first in-side access
	// materializes the reverse stream and must surface the typed error,
	// panicking since the lazy path has no error channel.
	n := 65 * 128
	b := NewBuilder(n+1, true)
	for i := 1; i <= 65; i++ {
		b.AddEdge(VertexID(i*128), 0)
	}
	c, err := Compact(b.Finalize())
	if err != nil {
		t.Fatalf("out-direction fits; Compact should succeed: %v", err)
	}
	c.BuildReverse() // deferred on compact directed graphs: arms lazyIn
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("materializing an overflowing reverse stream must panic")
		}
		e, ok := r.(error)
		var ov *CompactOverflowError
		if !ok || !errors.As(e, &ov) || ov.Direction != "in" {
			t.Fatalf("panic value = %v, want *CompactOverflowError{Direction: in}", r)
		}
	}()
	c.InArcs(0)
}
