// Package graph provides the compressed-sparse-row (CSR) graph
// representation used by the Pregel engine and the ΔV runtime, together
// with deterministic synthetic generators and simple edge-list I/O.
//
// Graphs are immutable after construction: build them with a Builder or a
// generator, then share them freely between workers. Both directed and
// undirected graphs are supported; undirected graphs store each edge in
// both directions so that the out-adjacency of a vertex is exactly its
// neighbour set.
package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// VertexID identifies a vertex. IDs are dense: a graph with n vertices uses
// IDs 0..n-1.
type VertexID = uint32

// Edge is a single adjacency entry: the far endpoint and the edge weight.
// Unweighted graphs report weight 1 for every edge.
type Edge struct {
	To     VertexID
	Weight float64
}

// Graph is an immutable CSR graph.
type Graph struct {
	n        int
	directed bool
	weighted bool

	// Out-adjacency in CSR form.
	outOff []int64
	outAdj []VertexID
	outW   []float64 // nil when unweighted

	// In-adjacency (reverse CSR). For undirected graphs these alias the
	// out-adjacency slices. For directed graphs they are built lazily by
	// BuildReverse (or eagerly by the Builder when requested).
	inOff []int64
	inAdj []VertexID
	inW   []float64

	// Compact adjacency (see compact.go). When cOutIdx is non-nil the
	// graph is compact: outAdj/inAdj are nil and neighbour lists decode
	// from the gap-varint streams cOut/cIn, indexed per vertex by the
	// byte offsets cOutIdx/cInIdx. The arc-offset and weight arrays
	// above are present in both representations.
	cOut    []byte
	cOutIdx []uint32
	cIn     []byte
	cInIdx  []uint32

	// lazyIn marks a compact directed graph whose BuildReverse has been
	// requested but whose reverse CSR is materialized only on first
	// in-side access; inOnce guards the materialization.
	lazyIn bool
	inOnce sync.Once

	// unmap releases the file mapping backing a graph loaded with
	// LoadMmap (nil for heap-backed graphs). It is invoked at most once,
	// through the refs lifecycle below — never directly.
	unmap func() error

	// refs guards the mapping's lifetime against concurrent readers. The
	// low bits count outstanding Retain pins; closedBit marks that Close
	// was called (further Retains fail); unmappedBit marks that the
	// mapping has actually been released. Close unmaps immediately only
	// when no pins are outstanding, otherwise the last Release unmaps —
	// so a reader holding an ArcIter over mapped memory can never have
	// the pages pulled out from under it by a concurrent Close.
	refs atomic.Int64

	// fp caches Fingerprint (0 = not yet computed; the hash is folded so
	// it can never legitimately be 0).
	fp atomic.Uint64
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the edge count: the number of stored arcs for a
// directed graph, half of them for an undirected graph. An undirected
// self-loop is stored as a single arc (see Builder), so it contributes
// only half an edge here and the result rounds down; use NumArcs for an
// exact count of stored adjacency entries.
func (g *Graph) NumEdges() int {
	if g.directed {
		return g.NumArcs()
	}
	return g.NumArcs() / 2
}

// NumArcs returns the number of stored adjacency entries in the
// out-direction, independent of representation. Every directed edge is
// one arc; every undirected non-loop edge is two (one per direction)
// and every undirected self-loop is one.
func (g *Graph) NumArcs() int {
	if len(g.outOff) == 0 {
		return 0
	}
	return int(g.outOff[g.n])
}

// Directed reports whether the graph is directed.
func (g *Graph) Directed() bool { return g.directed }

// Weighted reports whether the graph carries per-edge weights.
func (g *Graph) Weighted() bool { return g.weighted }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u VertexID) int {
	return int(g.outOff[u+1] - g.outOff[u])
}

// InDegree returns the in-degree of u. For directed graphs the reverse
// adjacency must have been built (see BuildReverse); for undirected graphs
// it equals OutDegree.
func (g *Graph) InDegree(u VertexID) int {
	if !g.ensureIn() {
		panic("graph: InDegree requires reverse adjacency; call BuildReverse")
	}
	return int(g.inOff[u+1] - g.inOff[u])
}

// OutNeighbors returns the out-adjacency list of u. For flat graphs the
// slice is shared and must not be modified; for compact graphs it is a
// freshly allocated copy — hot paths should iterate with OutArcs or
// ForEachOutNeighbor instead.
func (g *Graph) OutNeighbors(u VertexID) []VertexID {
	if g.cOutIdx != nil {
		return decodeList(g.cOut[g.cOutIdx[u]:g.cOutIdx[u+1]], g.OutDegree(u))
	}
	return g.outAdj[g.outOff[u]:g.outOff[u+1]]
}

// OutWeights returns the weights parallel to OutNeighbors(u), or nil when
// the graph is unweighted.
func (g *Graph) OutWeights(u VertexID) []float64 {
	if g.outW == nil {
		return nil
	}
	return g.outW[g.outOff[u]:g.outOff[u+1]]
}

// InNeighbors returns the in-adjacency list of u. The reverse adjacency
// must be available (BuildReverse for directed graphs). For flat graphs
// the slice is shared and must not be modified; for compact graphs it
// is a freshly allocated copy — hot paths should iterate with InArcs or
// ForEachInNeighbor instead.
func (g *Graph) InNeighbors(u VertexID) []VertexID {
	if !g.ensureIn() {
		panic("graph: InNeighbors requires reverse adjacency; call BuildReverse")
	}
	if g.cInIdx != nil {
		return decodeList(g.cIn[g.cInIdx[u]:g.cInIdx[u+1]], g.InDegree(u))
	}
	return g.inAdj[g.inOff[u]:g.inOff[u+1]]
}

// InWeights returns the weights parallel to InNeighbors(u), or nil when the
// graph is unweighted.
func (g *Graph) InWeights(u VertexID) []float64 {
	if g.lazyIn && g.outW != nil {
		g.inOnce.Do(g.materializeIn)
	}
	if g.inW == nil {
		return nil
	}
	return g.inW[g.inOff[u]:g.inOff[u+1]]
}

// HasReverse reports whether the in-adjacency is available (including a
// compact graph's deferred reverse, which materializes on first use).
func (g *Graph) HasReverse() bool { return g.inOff != nil || g.lazyIn }

// OutEdge returns the i-th out-edge of u. On compact graphs this decodes
// u's stream from the start; iterate with OutArcs instead of calling
// OutEdge in a loop.
func (g *Graph) OutEdge(u VertexID, i int) Edge {
	off := g.outOff[u] + int64(i)
	w := 1.0
	if g.outW != nil {
		w = g.outW[off]
	}
	if g.cOutIdx != nil {
		it := g.OutArcs(u)
		for k := 0; k <= i; k++ {
			if !it.Next() {
				panic("graph: OutEdge index out of range")
			}
		}
		return Edge{To: it.To(), Weight: w}
	}
	return Edge{To: g.outAdj[off], Weight: w}
}

// BuildReverse constructs the in-adjacency (reverse CSR) for a directed
// graph. It is idempotent and a no-op for undirected graphs. On a
// compact directed graph it only marks the reverse as requested; the
// in-CSR is materialized (in compact form) on first in-side access, so
// programs that never read in-adjacency never pay for it. It is not safe
// to call concurrently with itself, but once built the graph is again
// immutable and safe for concurrent reads.
func (g *Graph) BuildReverse() {
	if g.inOff != nil || g.lazyIn {
		return
	}
	if !g.directed {
		g.inOff, g.inW = g.outOff, g.outW
		if g.cOutIdx != nil {
			g.cIn, g.cInIdx = g.cOut, g.cOutIdx
		} else {
			g.inAdj = g.outAdj
		}
		return
	}
	if g.cOutIdx != nil {
		g.lazyIn = true
		return
	}
	inOff := make([]int64, g.n+1)
	for _, v := range g.outAdj {
		inOff[v+1]++
	}
	for i := 0; i < g.n; i++ {
		inOff[i+1] += inOff[i]
	}
	inAdj := make([]VertexID, len(g.outAdj))
	var inW []float64
	if g.outW != nil {
		inW = make([]float64, len(g.outW))
	}
	cursor := make([]int64, g.n)
	copy(cursor, inOff[:g.n])
	for u := 0; u < g.n; u++ {
		lo, hi := g.outOff[u], g.outOff[u+1]
		for i := lo; i < hi; i++ {
			v := g.outAdj[i]
			p := cursor[v]
			cursor[v]++
			inAdj[p] = VertexID(u)
			if inW != nil {
				inW[p] = g.outW[i]
			}
		}
	}
	g.inOff, g.inAdj, g.inW = inOff, inAdj, inW
}

// Fingerprint returns a deterministic 64-bit digest of the graph's
// structure: vertex count, directedness, the out-CSR offsets and adjacency,
// and the edge weights. Two graphs built from the same edges in the same
// order hash identically across processes and runs (the hash is FNV-1a over
// a fixed little-endian serialization), and the digest is
// representation-independent: a compact graph hashes exactly like its
// flat equivalent, so snapshots warm-start across representations. The
// digest is computed once and cached; it is never 0.
func (g *Graph) Fingerprint() uint64 {
	if fp := g.fp.Load(); fp != 0 {
		return fp
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	byte1 := func(b byte) {
		h = (h ^ uint64(b)) * prime64
	}
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			byte1(byte(v >> (8 * i)))
		}
	}
	word(uint64(g.n))
	if g.directed {
		byte1(1)
	} else {
		byte1(0)
	}
	for _, o := range g.outOff {
		word(uint64(o))
	}
	if g.cOutIdx != nil {
		for u := 0; u < g.n; u++ {
			it := g.OutArcs(VertexID(u))
			for it.Next() {
				word(uint64(it.To()))
			}
		}
	} else {
		for _, v := range g.outAdj {
			word(uint64(v))
		}
	}
	if g.outW != nil {
		byte1(1)
		for _, w := range g.outW {
			word(math.Float64bits(w))
		}
	} else {
		byte1(0)
	}
	if h == 0 {
		h = 1 // reserve 0 as "not computed"
	}
	g.fp.Store(h)
	return h
}

// Graph lifetime state bits held in Graph.refs alongside the pin count.
const (
	graphClosedBit   = int64(1) << 62
	graphUnmappedBit = int64(1) << 61
)

// Retain pins the graph's backing storage so it survives a concurrent
// Close: while the pin is held, a graph loaded with LoadMmap keeps its
// mapping even if Close is called, and the unmap happens at the final
// Release instead. Retain reports false once Close has been called — the
// caller must not touch the graph and should fall back to a newer
// version. Heap-backed graphs accept pins too (making caller code
// representation-agnostic); the pins are then bookkeeping only.
//
// Every successful Retain must be paired with exactly one Release.
func (g *Graph) Retain() bool {
	for {
		r := g.refs.Load()
		if r&graphClosedBit != 0 {
			return false
		}
		if g.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// Release undoes one Retain. The Release that drops the last pin after a
// Close performs the deferred unmap.
func (g *Graph) Release() {
	if r := g.refs.Add(-1); r == graphClosedBit {
		// Close ran while pins were outstanding and this was the last
		// one; exactly one goroutine observes this state.
		g.doUnmap()
	}
}

// Close retires the graph: subsequent Retains fail, and the file mapping
// backing a graph loaded with LoadMmap is released — immediately when no
// Retain pins are outstanding, otherwise by the last Release. It returns
// nil for heap-backed graphs and on repeated calls. A mapped graph must
// not be used after Close except through a Retain pin taken before it.
func (g *Graph) Close() error {
	for {
		r := g.refs.Load()
		if r&graphClosedBit != 0 {
			return nil
		}
		if g.refs.CompareAndSwap(r, r|graphClosedBit) {
			if r == 0 {
				return g.doUnmap()
			}
			return nil // last Release unmaps
		}
	}
}

// doUnmap releases the mapping. The refs protocol (Close with zero pins,
// or the final Release after Close) guarantees exactly one caller.
func (g *Graph) doUnmap() error {
	g.refs.Add(graphUnmappedBit)
	if g.unmap == nil {
		return nil
	}
	return g.unmap()
}

// decodeList decodes one gap-varint neighbour stream into a fresh slice.
func decodeList(b []byte, deg int) []VertexID {
	out := make([]VertexID, deg)
	p := 0
	prev := uint32(0)
	for k := 0; k < deg; k++ {
		var x uint32
		var s uint
		for {
			c := b[p]
			p++
			if c < 0x80 {
				x |= uint32(c) << s
				break
			}
			x |= uint32(c&0x7f) << s
			s += 7
		}
		prev += x
		out[k] = prev
	}
	return out
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	kind := "undirected"
	if g.directed {
		kind = "directed"
	}
	return fmt.Sprintf("graph{%s |V|=%d |E|=%d weighted=%v}", kind, g.n, g.NumEdges(), g.weighted)
}

// Builder accumulates edges and produces an immutable Graph.
//
// For an undirected builder, AddEdge(u,v) records the single undirected
// edge {u,v}; the builder mirrors it internally. Self-loops are kept as a
// single arc in undirected graphs.
type Builder struct {
	directed bool
	weighted bool
	n        int
	srcs     []VertexID
	dsts     []VertexID
	ws       []float64
	dedup    bool
	compact  bool
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int, directed bool) *Builder {
	return &Builder{directed: directed, n: n}
}

// SetDedup makes Finalize remove duplicate arcs (keeping the first weight).
func (b *Builder) SetDedup(on bool) { b.dedup = on }

// SetCompact makes Finalize return the graph in the compact gap-varint
// representation (see Compact). The flat CSR still exists transiently
// during Finalize.
func (b *Builder) SetCompact(on bool) { b.compact = on }

// AddEdge records an unweighted edge from u to v.
func (b *Builder) AddEdge(u, v VertexID) { b.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge records a weighted edge from u to v. Adding any edge with
// weight != 1 marks the graph weighted.
func (b *Builder) AddWeightedEdge(u, v VertexID, w float64) {
	if int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for %d vertices", u, v, b.n))
	}
	if w != 1 {
		b.weighted = true
	}
	b.srcs = append(b.srcs, u)
	b.dsts = append(b.dsts, v)
	b.ws = append(b.ws, w)
}

// NumBuffered returns the number of edges recorded so far.
func (b *Builder) NumBuffered() int { return len(b.srcs) }

// Finalize builds the immutable CSR graph. The Builder must not be used
// afterwards. When SetCompact is on, Finalize panics if the encoded
// adjacency overflows the 4 GiB stream limit; builders of graphs that
// can plausibly reach that scale should call Compact instead and handle
// the typed error.
func (b *Builder) Finalize() *Graph {
	g := b.finalizeFlat()
	if b.compact {
		return MustCompact(g)
	}
	return g
}

// Compact builds the graph directly in the compact gap-varint
// representation, returning a *CompactOverflowError (instead of
// Finalize's panic) if either direction's encoded stream would exceed
// the 4 GiB uint32 offset limit. The Builder must not be used
// afterwards.
func (b *Builder) Compact() (*Graph, error) {
	return Compact(b.finalizeFlat())
}

// finalizeFlat builds the flat CSR from the buffered edges.
func (b *Builder) finalizeFlat() *Graph {
	type arc struct {
		u, v VertexID
		w    float64
	}
	arcs := make([]arc, 0, len(b.srcs)*2)
	for i := range b.srcs {
		arcs = append(arcs, arc{b.srcs[i], b.dsts[i], b.ws[i]})
		if !b.directed && b.srcs[i] != b.dsts[i] {
			arcs = append(arcs, arc{b.dsts[i], b.srcs[i], b.ws[i]})
		}
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].u != arcs[j].u {
			return arcs[i].u < arcs[j].u
		}
		return arcs[i].v < arcs[j].v
	})
	if b.dedup {
		out := arcs[:0]
		for i, a := range arcs {
			if i > 0 && a.u == out[len(out)-1].u && a.v == out[len(out)-1].v {
				continue
			}
			out = append(out, a)
		}
		arcs = out
	}
	g := &Graph{n: b.n, directed: b.directed, weighted: b.weighted}
	g.outOff = make([]int64, b.n+1)
	g.outAdj = make([]VertexID, len(arcs))
	if b.weighted {
		g.outW = make([]float64, len(arcs))
	}
	for i, a := range arcs {
		g.outOff[a.u+1]++
		g.outAdj[i] = a.v
		if g.outW != nil {
			g.outW[i] = a.w
		}
	}
	for i := 0; i < b.n; i++ {
		g.outOff[i+1] += g.outOff[i]
	}
	if !b.directed {
		g.inOff, g.inAdj, g.inW = g.outOff, g.outAdj, g.outW
	}
	return g
}
