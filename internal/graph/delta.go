package graph

import (
	"fmt"
	"math"
	"sort"
)

// This file implements streaming graph mutations: a Delta is an ordered
// log of edge/vertex mutations, and ApplyDelta replays it against an
// immutable CSR graph to produce a fresh CSR plus an AppliedDelta — the
// directed-arc level diff the ΔV runtime needs to retract stale
// contributions and inject new ones without a full rerun.
//
// Deltas are graph-agnostic: mirroring for undirected graphs happens at
// apply time, exactly as Builder mirrors AddEdge. The rebuilt CSR keeps
// the Builder invariants (arcs sorted by (u,v), undirected arcs stored in
// both directions, self-loops single) so code that binary-searches
// adjacency or fingerprints the structure sees no difference between a
// built graph and a mutated one.

// MutationOp is the kind of a single Delta entry.
type MutationOp uint8

const (
	// MutAddEdge adds an edge u→v with weight W (1 for unweighted adds).
	// Parallel edges are allowed, as in Builder.
	MutAddEdge MutationOp = iota
	// MutRemoveEdge removes every parallel edge u→v. Removing an edge
	// that does not exist at that point in the log is an error.
	MutRemoveEdge
	// MutSetWeight rewrites the weight of every parallel edge u→v.
	// Reweighting a missing edge is an error.
	MutSetWeight
	// MutAddVertices appends Count isolated vertices (IDs n..n+Count-1);
	// later entries in the same log may reference them.
	MutAddVertices
)

func (op MutationOp) String() string {
	switch op {
	case MutAddEdge:
		return "add"
	case MutRemoveEdge:
		return "del"
	case MutSetWeight:
		return "set"
	case MutAddVertices:
		return "addv"
	}
	return fmt.Sprintf("MutationOp(%d)", uint8(op))
}

// Mutation is one entry of a Delta log.
type Mutation struct {
	Op    MutationOp
	U, V  VertexID // endpoints (edge ops)
	W     float64  // weight (MutAddEdge, MutSetWeight)
	Count int      // vertex count (MutAddVertices)
}

// Delta is an ordered mutation log. Entries are applied strictly in log
// order: "add u v; del u v" leaves no edge, "del u v; add u v" leaves
// exactly the new one.
type Delta struct {
	Muts []Mutation
}

// AddEdge appends an unweighted edge addition.
func (d *Delta) AddEdge(u, v VertexID) { d.AddWeightedEdge(u, v, 1) }

// AddWeightedEdge appends a weighted edge addition.
func (d *Delta) AddWeightedEdge(u, v VertexID, w float64) {
	d.Muts = append(d.Muts, Mutation{Op: MutAddEdge, U: u, V: v, W: w})
}

// RemoveEdge appends a removal of every parallel edge u→v.
func (d *Delta) RemoveEdge(u, v VertexID) {
	d.Muts = append(d.Muts, Mutation{Op: MutRemoveEdge, U: u, V: v})
}

// SetWeight appends a reweight of every parallel edge u→v.
func (d *Delta) SetWeight(u, v VertexID, w float64) {
	d.Muts = append(d.Muts, Mutation{Op: MutSetWeight, U: u, V: v, W: w})
}

// AddVertices appends count new isolated vertices.
func (d *Delta) AddVertices(count int) {
	d.Muts = append(d.Muts, Mutation{Op: MutAddVertices, Count: count})
}

// Len returns the number of log entries.
func (d *Delta) Len() int { return len(d.Muts) }

// ArcKind classifies one directed-arc change in an AppliedDelta.
type ArcKind uint8

const (
	ArcAdd      ArcKind = iota // arc did not exist before, exists now (NewW)
	ArcRemove                  // arc existed before (OldW), does not now
	ArcReweight                // arc survives with OldW rewritten to NewW
)

func (k ArcKind) String() string {
	switch k {
	case ArcAdd:
		return "add"
	case ArcRemove:
		return "remove"
	case ArcReweight:
		return "reweight"
	}
	return fmt.Sprintf("ArcKind(%d)", uint8(k))
}

// ArcChange records the net effect of a Delta on one stored directed arc.
// Undirected edges appear as two changes (one per direction, self-loops
// one); parallel arcs appear once each. OldW is the pre-mutation weight —
// kept here because the mutated graph no longer stores removed arcs, and
// retraction needs the weight the stale contribution was computed with.
type ArcChange struct {
	Kind       ArcKind
	U, V       VertexID
	OldW, NewW float64
}

// AppliedDelta is the net directed-arc diff produced by ApplyDelta,
// together with the identity of the graph it was computed against.
type AppliedDelta struct {
	// OldFingerprint is Fingerprint() of the pre-mutation graph, computed
	// before any structure changed. Warm-start validation matches it
	// against the converged snapshot's fingerprint.
	OldFingerprint uint64
	// NewVertices is how many vertices the delta appended.
	NewVertices int
	// Arcs lists every changed stored arc, sorted by (U, V).
	Arcs []ArcChange
}

// Touched returns the sorted, deduplicated set of vertices incident to
// any changed arc, plus any appended vertices — the activation frontier
// for a warm restart. oldN is the pre-mutation vertex count.
func (a *AppliedDelta) Touched(oldN int) []VertexID {
	ids := make([]VertexID, 0, 2*len(a.Arcs)+a.NewVertices)
	for _, c := range a.Arcs {
		ids = append(ids, c.U, c.V)
	}
	for i := 0; i < a.NewVertices; i++ {
		ids = append(ids, VertexID(oldN+i))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:0]
	for i, v := range ids {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// pairKey identifies a directed arc endpoint pair.
type pairKey struct{ u, v VertexID }

// pendingAdd is an addition not yet folded into the CSR; dead additions
// were cancelled by a later RemoveEdge in the same log.
type pendingAdd struct {
	u, v VertexID
	w    float64
	dead bool
}

// deltaState carries the sequential interpretation of a mutation log.
type deltaState struct {
	g        *Graph
	n        int                 // current vertex count (grows with MutAddVertices)
	removed  map[pairKey]bool    // all original arcs of the pair dropped
	override map[pairKey]float64 // surviving original arcs reweighted
	adds     []pendingAdd
}

// origArcRange returns the index range of original arcs u→v (arcs are
// sorted by (u,v), so parallel arcs are contiguous).
func (st *deltaState) origArcRange(u, v VertexID) (int64, int64) {
	if int(u) >= st.g.n {
		return 0, 0
	}
	lo, hi := st.g.outOff[u], st.g.outOff[u+1]
	adj := st.g.outAdj[lo:hi]
	a := int64(sort.Search(len(adj), func(i int) bool { return adj[i] >= v }))
	b := int64(sort.Search(len(adj), func(i int) bool { return adj[i] > v }))
	return lo + a, lo + b
}

// arcExists reports whether any arc u→v is live at this point in the log.
func (st *deltaState) arcExists(u, v VertexID) bool {
	if lo, hi := st.origArcRange(u, v); hi > lo && !st.removed[pairKey{u, v}] {
		return true
	}
	for i := range st.adds {
		if a := &st.adds[i]; !a.dead && a.u == u && a.v == v {
			return true
		}
	}
	return false
}

func (st *deltaState) doAdd(u, v VertexID, w float64) {
	st.adds = append(st.adds, pendingAdd{u: u, v: v, w: w})
}

func (st *deltaState) doRemove(u, v VertexID) {
	p := pairKey{u, v}
	st.removed[p] = true
	delete(st.override, p)
	for i := range st.adds {
		if a := &st.adds[i]; !a.dead && a.u == u && a.v == v {
			a.dead = true
		}
	}
}

func (st *deltaState) doSet(u, v VertexID, w float64) {
	p := pairKey{u, v}
	if lo, hi := st.origArcRange(u, v); hi > lo && !st.removed[p] {
		st.override[p] = w
	}
	for i := range st.adds {
		if a := &st.adds[i]; !a.dead && a.u == u && a.v == v {
			a.w = w
		}
	}
}

// ApplyDelta replays the mutation log against g and returns the mutated
// graph plus the directed-arc diff. g itself is never modified — it stays
// immutable and shareable; the result is a fresh CSR whose cached
// fingerprint starts uncomputed, so Fingerprint() on the mutated graph
// hashes the new structure instead of inheriting g's stale digest.
//
// If g had its reverse adjacency built, the result's is built too, so a
// mutated graph can drop into any pipeline the original ran in. The
// representation is preserved: mutating a compact graph yields a compact
// graph (the merge itself runs over a transient flat decode, and a
// deferred reverse adjacency stays deferred).
func ApplyDelta(g *Graph, d *Delta) (*Graph, *AppliedDelta, error) {
	oldFP := g.Fingerprint() // before any structural change
	flat := Flatten(g)       // no-op for flat graphs
	st := &deltaState{
		g:        flat,
		n:        g.n,
		removed:  make(map[pairKey]bool),
		override: make(map[pairKey]float64),
	}
	for i, m := range d.Muts {
		switch m.Op {
		case MutAddVertices:
			if m.Count <= 0 {
				return nil, nil, fmt.Errorf("graph: delta entry %d: addv needs a positive count, got %d", i, m.Count)
			}
			st.n += m.Count
			continue
		case MutAddEdge, MutRemoveEdge, MutSetWeight:
			if int(m.U) >= st.n || int(m.V) >= st.n {
				return nil, nil, fmt.Errorf("graph: delta entry %d: %s %d %d out of range for %d vertices",
					i, m.Op, m.U, m.V, st.n)
			}
		default:
			return nil, nil, fmt.Errorf("graph: delta entry %d: unknown op %d", i, m.Op)
		}
		// Mirror edge ops for undirected graphs (self-loops single arc,
		// as in Builder.Finalize).
		mirror := !g.directed && m.U != m.V
		switch m.Op {
		case MutAddEdge:
			st.doAdd(m.U, m.V, m.W)
			if mirror {
				st.doAdd(m.V, m.U, m.W)
			}
		case MutRemoveEdge:
			if !st.arcExists(m.U, m.V) {
				return nil, nil, fmt.Errorf("graph: delta entry %d: del %d %d: no such edge", i, m.U, m.V)
			}
			st.doRemove(m.U, m.V)
			if mirror {
				st.doRemove(m.V, m.U)
			}
		case MutSetWeight:
			if !st.arcExists(m.U, m.V) {
				return nil, nil, fmt.Errorf("graph: delta entry %d: set %d %d: no such edge", i, m.U, m.V)
			}
			st.doSet(m.U, m.V, m.W)
			if mirror {
				st.doSet(m.V, m.U, m.W)
			}
		}
	}
	ng, ad, err := rebuild(flat, st, oldFP)
	if err == nil && g.IsCompact() {
		ng, err = Compact(ng)
		if err != nil {
			return nil, nil, err
		}
		if g.HasReverse() && ng.directed && !ng.HasReverse() {
			ng.BuildReverse() // re-arm the deferred reverse adjacency
		}
	}
	return ng, ad, err
}

// rebuild merges the surviving original arcs with the live additions into
// a fresh sorted CSR, emitting the arc diff along the way. The original
// arcs of each source are already sorted by target; additions are sorted
// stably (log order preserved among parallel arcs) and merged in, with
// originals first on equal targets — fully deterministic, no map
// iteration anywhere on the structure path.
func rebuild(g *Graph, st *deltaState, oldFP uint64) (*Graph, *AppliedDelta, error) {
	live := make([]pendingAdd, 0, len(st.adds))
	for _, a := range st.adds {
		if !a.dead {
			live = append(live, a)
		}
	}
	sort.SliceStable(live, func(i, j int) bool {
		if live[i].u != live[j].u {
			return live[i].u < live[j].u
		}
		return live[i].v < live[j].v
	})

	n2 := st.n
	ng := &Graph{n: n2, directed: g.directed, weighted: g.weighted}
	ng.outOff = make([]int64, n2+1)
	ng.outAdj = make([]VertexID, 0, len(g.outAdj)+len(live))
	outW := make([]float64, 0, len(g.outAdj)+len(live))
	var changes []ArcChange

	origW := func(i int64) float64 {
		if g.outW == nil {
			return 1
		}
		return g.outW[i]
	}
	emit := func(u, v VertexID, w float64) {
		ng.outAdj = append(ng.outAdj, v)
		outW = append(outW, w)
		if w != 1 {
			ng.weighted = true
		}
		ng.outOff[u+1]++
	}

	ai := 0 // cursor into live additions
	for u := 0; u < n2; u++ {
		var oi, oend int64
		if u < g.n {
			oi, oend = g.outOff[u], g.outOff[u+1]
		}
		for oi < oend || (ai < len(live) && int(live[ai].u) == u) {
			takeOrig := oi < oend &&
				(ai >= len(live) || int(live[ai].u) != u || g.outAdj[oi] <= live[ai].v)
			if takeOrig {
				v, ow := g.outAdj[oi], origW(oi)
				oi++
				p := pairKey{VertexID(u), v}
				if st.removed[p] {
					changes = append(changes, ArcChange{Kind: ArcRemove, U: VertexID(u), V: v, OldW: ow})
					continue
				}
				w := ow
				if nw, ok := st.override[p]; ok {
					w = nw
				}
				if math.Float64bits(w) != math.Float64bits(ow) {
					changes = append(changes, ArcChange{Kind: ArcReweight, U: VertexID(u), V: v, OldW: ow, NewW: w})
				}
				emit(VertexID(u), v, w)
			} else {
				a := live[ai]
				ai++
				changes = append(changes, ArcChange{Kind: ArcAdd, U: a.u, V: a.v, NewW: a.w})
				emit(a.u, a.v, a.w)
			}
		}
	}
	for i := 0; i < n2; i++ {
		ng.outOff[i+1] += ng.outOff[i]
	}
	if ng.weighted {
		ng.outW = outW
	}
	// ng.fp is the zero value: the mutated graph's fingerprint is computed
	// from its own structure on first use, never inherited from g.
	if !ng.directed {
		ng.inOff, ng.inAdj, ng.inW = ng.outOff, ng.outAdj, ng.outW
	} else if g.HasReverse() {
		ng.BuildReverse()
	}
	return ng, &AppliedDelta{OldFingerprint: oldFP, NewVertices: n2 - g.n, Arcs: changes}, nil
}
