package graph

import "fmt"

// Dataset describes one of the benchmark graphs standing in for the
// datasets in Table 1 of the paper. Each stand-in preserves the original's
// directedness and edge/vertex ratio at roughly 1/1000 scale and is
// generated deterministically.
type Dataset struct {
	Name     string // stand-in name, e.g. "wikipedia-s"
	Original string // dataset in the paper
	Directed bool
	// Paper-reported sizes (for EXPERIMENTS.md comparison).
	PaperV, PaperE int64
	// Generator for the stand-in graph.
	Build func() *Graph
}

// Datasets lists the four Table-1 stand-ins in the paper's order.
func Datasets() []Dataset {
	return []Dataset{
		{
			Name: "wikipedia-s", Original: "Wikipedia", Directed: true,
			PaperV: 18_270_000, PaperE: 136_540_000,
			// |E|/|V| ≈ 7.5 → R-MAT scale 14 (16384 vertices), edge factor 8.
			Build: func() *Graph {
				g := RMAT(14, 8, 0.57, 0.19, 0.19, true, 1)
				g.BuildReverse()
				return g
			},
		},
		{
			Name: "livejournal-dg-s", Original: "LiveJournal-DG", Directed: true,
			PaperV: 4_850_000, PaperE: 68_480_000,
			// |E|/|V| ≈ 14 → R-MAT scale 12 (4096 vertices), edge factor 14.
			Build: func() *Graph {
				g := RMAT(12, 14, 0.57, 0.19, 0.19, true, 2)
				g.BuildReverse()
				return g
			},
		},
		{
			Name: "facebook-s", Original: "Facebook", Directed: false,
			PaperV: 59_220_000, PaperE: 185_040_000,
			// |E|/|V| ≈ 3.1 → preferential attachment with k=3.
			Build: func() *Graph { return PreferentialAttachment(60_000, 3, 3) },
		},
		{
			Name: "livejournal-ug-s", Original: "LiveJournal-UG", Directed: false,
			PaperV: 3_990_000, PaperE: 34_680_000,
			// |E|/|V| ≈ 8.7 → preferential attachment with k=9.
			Build: func() *Graph { return PreferentialAttachment(4_000, 9, 4) },
		},
	}
}

// DatasetByName returns the named stand-in dataset.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("graph: unknown dataset %q", name)
}
