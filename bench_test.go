// Benchmarks regenerating the paper's evaluation (§7): one benchmark per
// table and figure, plus the DESIGN.md ablations. Message counts and other
// non-timing observables are attached as custom metrics so a single
//
//	go test -bench=. -benchmem
//
// run reports both the runtimes (figure bars) and the message counts
// (figure right-hand panels).
package repro

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/deltav/vm"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/programs"
)

// BenchmarkTable1Datasets measures stand-in dataset construction and
// reports their shapes (Table 1).
func BenchmarkTable1Datasets(b *testing.B) {
	for _, d := range graph.Datasets() {
		d := d
		b.Run(d.Name, func(b *testing.B) {
			var g *graph.Graph
			for i := 0; i < b.N; i++ {
				g = d.Build()
			}
			b.ReportMetric(float64(g.NumVertices()), "vertices")
			b.ReportMetric(float64(g.NumEdges()), "edges")
		})
	}
}

// BenchmarkTable2StateSize measures compilation and reports the
// vertex-state bytes per variant (Table 2).
func BenchmarkTable2StateSize(b *testing.B) {
	for _, name := range []string{"pagerank", "sssp", "cc", "hits"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var inc, base *core.Program
			for i := 0; i < b.N; i++ {
				var err error
				inc, err = core.Compile(programs.MustSource(name), core.Options{Mode: core.Incremental})
				if err != nil {
					b.Fatal(err)
				}
				base, err = core.Compile(programs.MustSource(name), core.Options{Mode: core.Baseline})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(inc.Layout.ByteSize()), "dV-bytes")
			b.ReportMetric(float64(base.Layout.ByteSize()), "dV*-bytes")
		})
	}
}

// benchVariant runs one (program, dataset, variant) cell of Figure 4/5 per
// benchmark iteration and reports messages and supersteps.
func benchVariant(b *testing.B, program, dataset, variant string) {
	b.Helper()
	// Warm the dataset cache outside the timer.
	if _, err := bench.LoadDataset(dataset); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var row bench.PerfRow
	for i := 0; i < b.N; i++ {
		var err error
		row, err = bench.Measure(context.Background(), program, dataset, variant, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(row.Messages), "msgs")
	b.ReportMetric(float64(row.Combined), "delivered")
	b.ReportMetric(float64(row.Steps), "supersteps")
}

// BenchmarkFig4 regenerates Figure 4: PageRank, SSSP and HITS on the two
// directed stand-ins for ΔV, ΔV★ and the handwritten Pregel+ reference.
// The left panels of the figure are the ns/op column; the right panels are
// the msgs metric.
func BenchmarkFig4(b *testing.B) {
	for _, ds := range bench.Figure4Datasets {
		for _, prog := range bench.Figure4Programs {
			for _, variant := range bench.Variants {
				ds, prog, variant := ds, prog, variant
				b.Run(ds+"/"+prog+"/"+variant, func(b *testing.B) {
					benchVariant(b, prog, ds, variant)
				})
			}
		}
	}
}

// BenchmarkFig5 regenerates Figure 5: Connected Components on the two
// undirected stand-ins.
func BenchmarkFig5(b *testing.B) {
	for _, ds := range bench.Figure5Datasets {
		for _, variant := range bench.Variants {
			ds, variant := ds, variant
			b.Run(ds+"/cc/"+variant, func(b *testing.B) {
				benchVariant(b, "cc", ds, variant)
			})
		}
	}
}

// BenchmarkAblationMemoTable compares full incrementalization against the
// §4.2.1 lookup-table strawman (DESIGN.md A1).
func BenchmarkAblationMemoTable(b *testing.B) {
	const ds = "livejournal-dg-s"
	for _, variant := range []string{bench.VariantDV, bench.VariantMemoTable} {
		variant := variant
		b.Run(variant, func(b *testing.B) {
			benchVariant(b, "pagerank", ds, variant)
		})
	}
}

// BenchmarkAblationEpsilon sweeps the §9 slop parameter (DESIGN.md A2).
func BenchmarkAblationEpsilon(b *testing.B) {
	g, err := bench.LoadDataset("livejournal-dg-s")
	if err != nil {
		b.Fatal(err)
	}
	for _, eps := range []float64{0, 1e-9, 1e-6, 1e-3} {
		eps := eps
		b.Run(benchName(eps), func(b *testing.B) {
			prog, err := core.Compile(programs.MustSource("pagerank"),
				core.Options{Mode: core.Incremental, Epsilon: eps})
			if err != nil {
				b.Fatal(err)
			}
			var msgs int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := vm.Run(prog, g, vm.RunOptions{Combine: true, Workers: bench.BenchWorkers})
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.Stats.MessagesSent
			}
			b.ReportMetric(float64(msgs), "msgs")
		})
	}
}

func benchName(eps float64) string {
	switch eps {
	case 0:
		return "eps=0"
	case 1e-9:
		return "eps=1e-9"
	case 1e-6:
		return "eps=1e-6"
	default:
		return "eps=1e-3"
	}
}

// BenchmarkAblationScheduler compares scan-all against the §9 work-queue
// halt-by-default scheduler (DESIGN.md A3).
func BenchmarkAblationScheduler(b *testing.B) {
	g, err := bench.LoadDataset("wikipedia-s")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := core.Compile(programs.MustSource("pagerank"), core.Options{Mode: core.Incremental})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		sched pregel.Scheduler
	}{{"scan-all", pregel.ScanAll}, {"work-queue", pregel.WorkQueue}} {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var active int64
			for i := 0; i < b.N; i++ {
				res, err := vm.Run(prog, g, vm.RunOptions{Scheduler: tc.sched, Combine: true, Workers: bench.BenchWorkers})
				if err != nil {
					b.Fatal(err)
				}
				active = res.Stats.TotalActive
			}
			b.ReportMetric(float64(active), "vertices-run")
		})
	}
}

// BenchmarkAblationCombiner measures sender-side combining on ΔV★
// PageRank, where per-superstep fan-in is maximal (DESIGN.md A5).
func BenchmarkAblationCombiner(b *testing.B) {
	g, err := bench.LoadDataset("wikipedia-s")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := core.Compile(programs.MustSource("pagerank"), core.Options{Mode: core.Baseline})
	if err != nil {
		b.Fatal(err)
	}
	for _, combine := range []bool{false, true} {
		combine := combine
		name := "off"
		if combine {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var delivered int64
			for i := 0; i < b.N; i++ {
				res, err := vm.Run(prog, g, vm.RunOptions{Combine: combine, Workers: bench.BenchWorkers})
				if err != nil {
					b.Fatal(err)
				}
				delivered = res.Stats.CombinedMessages
			}
			b.ReportMetric(float64(delivered), "delivered")
		})
	}
}

// BenchmarkAblationPartition compares block vs hash vertex placement on
// incremental PageRank (DESIGN.md A7): hash placement scatters neighbours,
// raising cross-worker traffic.
func BenchmarkAblationPartition(b *testing.B) {
	g, err := bench.LoadDataset("wikipedia-s")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := core.Compile(programs.MustSource("pagerank"), core.Options{Mode: core.Incremental})
	if err != nil {
		b.Fatal(err)
	}
	for _, part := range []pregel.Partition{pregel.PartitionBlock, pregel.PartitionHash} {
		part := part
		b.Run(part.String(), func(b *testing.B) {
			var cross int64
			for i := 0; i < b.N; i++ {
				res, err := vm.Run(prog, g, vm.RunOptions{Partition: part, Combine: true, Workers: bench.BenchWorkers})
				if err != nil {
					b.Fatal(err)
				}
				cross = res.Stats.CrossWorker
			}
			b.ReportMetric(float64(cross), "cross-worker")
		})
	}
}

// BenchmarkCompile measures raw compiler throughput over the corpus.
func BenchmarkCompile(b *testing.B) {
	for _, mode := range []core.Mode{core.Incremental, core.Baseline} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, name := range programs.Names() {
					if _, err := core.Compile(programs.MustSource(name), core.Options{Mode: mode}); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
