// Command dvshard hosts one shard of a multi-process vertex-centric
// run: it owns a contiguous block of the graph's worker ranges, swaps
// messages with its peer shards over the socket transport at every
// superstep barrier, and lands on results bit-identical to a
// single-process run with the same total worker count.
//
// A two-process PageRank over a unix-socket mesh:
//
//	dvshard -shard 0 -shards 2 -addrs /tmp/s0.sock,/tmp/s1.sock \
//	        -gen rmat:12:8 -workers 4 -algo pagerank -dump sh0.txt &
//	dvshard -shard 1 -shards 2 -addrs /tmp/s0.sock,/tmp/s1.sock \
//	        -gen rmat:12:8 -workers 4 -algo pagerank -dump sh1.txt
//
// Every shard loads the same graph (same -gen/-edges and -seed),
// runs the same algorithm with the same explicit -workers count, and
// differs only in -shard. After a successful run every shard holds the
// full value vector, so the dumps are identical across shards and
// interchangeable with a -shards 1 run for diffing.
//
// With -checkpoint-dir each shard snapshots its own vertex range at
// barriers; after a crash, restart every shard with -resume pointing at
// snapshots of the SAME superstep (a common snapshot across all shard
// directories) and the run continues from that barrier.
package main

import (
	"context"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/algorithms"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/pregel/transport"
)

type config struct {
	shard, shards int
	addrs         string
	workers       int
	algo          string
	iters         int
	source        int
	gen           string
	edges         string
	directed      bool
	seed          int64
	queue         bool
	combine       bool
	dump          string
	ckptDir       string
	ckptEvery     int
	resume        string
	maxSupersteps int
	timeout       time.Duration
	meshTimeout   time.Duration
}

func registerFlags(fs *flag.FlagSet) *config {
	c := &config{}
	fs.IntVar(&c.shard, "shard", 0, "this process's shard index, in [0, -shards)")
	fs.IntVar(&c.shards, "shards", 1, "total shard count (1 = single-process baseline)")
	fs.StringVar(&c.addrs, "addrs", "", "comma-separated listen addresses, one per shard (unix:PATH or tcp:HOST:PORT)")
	fs.IntVar(&c.workers, "workers", 0, "TOTAL worker count across all shards (required, identical on every shard)")
	fs.StringVar(&c.algo, "algo", "pagerank", "algorithm: pagerank, sssp, cc")
	fs.IntVar(&c.iters, "iters", 20, "pagerank iterations")
	fs.IntVar(&c.source, "source", 0, "sssp source vertex")
	fs.StringVar(&c.gen, "gen", "", "generator spec (rmat:scale:ef, ba:n:k, er:n:m, grid:r:c, ws:n:k:beta)")
	fs.StringVar(&c.edges, "edges", "", "edge-list or DVGRAF file (must be identical on every shard)")
	fs.BoolVar(&c.directed, "directed", true, "treat -edges/-gen input as directed")
	fs.Int64Var(&c.seed, "seed", 1, "generator seed")
	fs.BoolVar(&c.queue, "queue", false, "use the work-queue (halt-by-default) scheduler")
	fs.BoolVar(&c.combine, "combine", true, "enable message combiners")
	fs.StringVar(&c.dump, "dump", "", "write per-vertex values (hex float bits) to this file")
	fs.StringVar(&c.ckptDir, "checkpoint-dir", "", "write this shard's barrier snapshots into this directory")
	fs.IntVar(&c.ckptEvery, "checkpoint-every", 0, "periodic snapshot interval in supersteps (0 = final/abort snapshots only)")
	fs.StringVar(&c.resume, "resume", "", "resume from this snapshot file, or the latest snapshot in this directory")
	fs.IntVar(&c.maxSupersteps, "max-supersteps", 0, "abort (with a snapshot when checkpointing) after this many supersteps (0 = no limit)")
	fs.DurationVar(&c.timeout, "timeout", 0, "abort the run after this duration (0 = no limit)")
	fs.DurationVar(&c.meshTimeout, "mesh-timeout", 30*time.Second, "how long to wait for peer shards while forming the mesh")
	return c
}

func main() {
	cfg := registerFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, cfg, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dvshard:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg *config, out io.Writer) error {
	if cfg.workers <= 0 {
		return fmt.Errorf("-workers is required and must be explicit (every shard passes the same total)")
	}
	if cfg.shards < 1 || cfg.shard < 0 || cfg.shard >= cfg.shards {
		return fmt.Errorf("bad -shard %d of -shards %d", cfg.shard, cfg.shards)
	}
	g, err := loadGraph(cfg)
	if err != nil {
		return err
	}

	addrs := strings.Split(cfg.addrs, ",")
	if cfg.addrs == "" {
		addrs = nil
	}
	if len(addrs) != cfg.shards {
		return fmt.Errorf("-addrs lists %d addresses for %d shards", len(addrs), cfg.shards)
	}
	tr, err := transport.DialMesh(transport.SocketConfig{
		Shard: cfg.shard, Count: cfg.shards, Addrs: addrs,
		Fingerprint: g.Fingerprint(), Timeout: cfg.meshTimeout,
	})
	if err != nil {
		return err
	}
	defer tr.Close()

	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}
	opts := algorithms.RunOptions{
		Workers: cfg.workers,
		Combine: cfg.combine,
		Ctx:     ctx,
		Shard:   &pregel.ShardOptions{Index: cfg.shard, Count: cfg.shards, Transport: tr},
	}
	if cfg.queue {
		opts.Scheduler = pregel.WorkQueue
	}
	if cfg.ckptDir != "" {
		if err := os.MkdirAll(cfg.ckptDir, 0o777); err != nil {
			return err
		}
		opts.Checkpoint = pregel.CheckpointOptions{Dir: cfg.ckptDir, Every: cfg.ckptEvery}
	}
	if cfg.resume != "" {
		snap, err := loadSnapshot(cfg.resume)
		if err != nil {
			return err
		}
		opts.Resume = snap
	}
	opts.MaxSupersteps = cfg.maxSupersteps

	start := time.Now()
	vals, stats, err := runAlgo(g, cfg, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if cfg.dump != "" {
		if err := dumpValues(cfg.dump, vals); err != nil {
			return err
		}
	}
	fo, bo, fi, bi := tr.Counters()
	fmt.Fprintf(out, "dvshard: shard %d/%d algo=%s n=%d workers=%d supersteps=%d messages=%d digest=%016x wire=%d/%dB out %d/%dB in elapsed=%s\n",
		cfg.shard, cfg.shards, cfg.algo, g.NumVertices(), cfg.workers,
		stats.Supersteps, stats.MessagesSent, digest(vals), fo, bo, fi, bi, elapsed.Round(time.Millisecond))
	return nil
}

// runAlgo dispatches to the reference algorithm and flattens the final
// vertex values to float64s (every shard holds the full vector after
// the run's value gather).
func runAlgo(g *graph.Graph, cfg *config, opts algorithms.RunOptions) ([]float64, *pregel.Stats, error) {
	switch cfg.algo {
	case "pagerank":
		e, st, err := algorithms.RunPageRank(g, cfg.iters, opts)
		if err != nil {
			return nil, nil, err
		}
		vals := make([]float64, g.NumVertices())
		for u, v := range e.Values() {
			vals[u] = v.PR
		}
		return vals, st, nil
	case "sssp":
		e, st, err := algorithms.RunSSSP(g, graph.VertexID(cfg.source), opts)
		if err != nil {
			return nil, nil, err
		}
		vals := make([]float64, g.NumVertices())
		for u, v := range e.Values() {
			vals[u] = v.Dist
		}
		return vals, st, nil
	case "cc":
		e, st, err := algorithms.RunCC(g, opts)
		if err != nil {
			return nil, nil, err
		}
		vals := make([]float64, g.NumVertices())
		for u, v := range e.Values() {
			vals[u] = float64(v.Comp)
		}
		return vals, st, nil
	}
	return nil, nil, fmt.Errorf("unknown -algo %q (want pagerank, sssp or cc)", cfg.algo)
}

func loadGraph(cfg *config) (*graph.Graph, error) {
	switch {
	case cfg.gen != "" && cfg.edges != "":
		return nil, fmt.Errorf("conflicting graph sources: -gen and -edges — pick exactly one")
	case cfg.edges != "":
		if graph.IsGraphFile(cfg.edges) {
			return graph.ReadGraphFile(cfg.edges, graph.LoadFlat)
		}
		f, err := os.Open(cfg.edges)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f, cfg.directed)
	case cfg.gen != "":
		return generate(cfg.gen, cfg.directed, cfg.seed)
	}
	return nil, fmt.Errorf("need -gen or -edges")
}

func generate(spec string, directed bool, seed int64) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	atoi := func(i int) int {
		if i >= len(parts) {
			return 0
		}
		v, _ := strconv.Atoi(parts[i])
		return v
	}
	switch parts[0] {
	case "rmat":
		return graph.RMAT(atoi(1), atoi(2), 0.57, 0.19, 0.19, directed, seed), nil
	case "ba":
		return graph.PreferentialAttachment(atoi(1), atoi(2), seed), nil
	case "er":
		return graph.ErdosRenyi(atoi(1), atoi(2), directed, seed), nil
	case "grid":
		return graph.Grid(atoi(1), atoi(2), 10, seed), nil
	case "ws":
		beta := 0.1
		if len(parts) > 3 {
			if b, err := strconv.ParseFloat(parts[3], 64); err == nil {
				beta = b
			}
		}
		return graph.WattsStrogatz(atoi(1), atoi(2), beta, seed), nil
	}
	return nil, fmt.Errorf("unknown generator %q", parts[0])
}

// loadSnapshot reads a snapshot file, or the highest-numbered
// snap-*.dvsnap in a directory. After a crash, restart all shards from
// snapshots of the same superstep — the first barrier rejects a
// mismatched resume.
func loadSnapshot(path string) (*pregel.Snapshot, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if fi.IsDir() {
		names, err := filepath.Glob(filepath.Join(path, "snap-*.dvsnap"))
		if err != nil || len(names) == 0 {
			return nil, fmt.Errorf("no snapshots in %s", path)
		}
		sort.Strings(names)
		path = names[len(names)-1]
	}
	return pregel.ReadSnapshotFile(path)
}

// dumpValues writes one "vertex hexbits" line per vertex. Hex float
// bits make the diff exact: two runs agree iff the files are identical.
func dumpValues(path string, vals []float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	for u, v := range vals {
		fmt.Fprintf(f, "%d %016x\n", u, math.Float64bits(v))
	}
	return f.Close()
}

// digest folds the value bits through FNV-1a for the one-line summary.
func digest(vals []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range vals {
		bits := math.Float64bits(v)
		for i := range b {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	return h.Sum64()
}
