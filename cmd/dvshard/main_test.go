package main

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// parseCfg builds a config from CLI-style arguments, exercising the
// same flag wiring main uses.
func parseCfg(t *testing.T, args ...string) *config {
	t.Helper()
	fs := flag.NewFlagSet("dvshard", flag.ContinueOnError)
	cfg := registerFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return cfg
}

// runPair runs two shards of the given configuration concurrently and
// returns their summary lines.
func runPair(t *testing.T, mkArgs func(shard int) []string) [2]string {
	t.Helper()
	var out [2]bytes.Buffer
	errs := [2]error{}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = run(context.Background(), parseCfg(t, mkArgs(i)...), &out[i])
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v\n%s", i, err, out[i].String())
		}
	}
	return [2]string{out[0].String(), out[1].String()}
}

func readFileT(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestTwoShardsMatchSingleProcess(t *testing.T) {
	for _, algo := range []string{"pagerank", "sssp", "cc"} {
		t.Run(algo, func(t *testing.T) {
			dir := t.TempDir()
			base := []string{
				"-gen", "rmat:9:8", "-workers", "4", "-algo", algo, "-seed", "3",
				"-mesh-timeout", "10s",
			}
			// Single-process reference over the count-1 socket mesh.
			refDump := filepath.Join(dir, "ref.txt")
			var refOut bytes.Buffer
			refArgs := append([]string{
				"-shards", "1", "-addrs", "unix:" + filepath.Join(dir, "ref.sock"),
				"-dump", refDump,
			}, base...)
			if err := run(context.Background(), parseCfg(t, refArgs...), &refOut); err != nil {
				t.Fatalf("reference run: %v", err)
			}
			// The same run split across two engines.
			addrs := "unix:" + filepath.Join(dir, "s0.sock") + ",unix:" + filepath.Join(dir, "s1.sock")
			outs := runPair(t, func(i int) []string {
				return append([]string{
					"-shard", string(rune('0' + i)), "-shards", "2", "-addrs", addrs,
					"-dump", filepath.Join(dir, "sh"+string(rune('0'+i))+".txt"),
				}, base...)
			})
			ref := readFileT(t, refDump)
			for i := 0; i < 2; i++ {
				got := readFileT(t, filepath.Join(dir, "sh"+string(rune('0'+i))+".txt"))
				if got != ref {
					t.Fatalf("shard %d dump differs from the single-process run", i)
				}
				if !strings.Contains(outs[i], "shard "+string(rune('0'+i))+"/2") {
					t.Fatalf("shard %d summary: %q", i, outs[i])
				}
			}
		})
	}
}

func TestShardCheckpointResumeCLI(t *testing.T) {
	dir := t.TempDir()
	base := []string{
		"-gen", "rmat:9:8", "-workers", "4", "-algo", "pagerank", "-seed", "5",
		"-mesh-timeout", "10s",
	}
	addrs := "unix:" + filepath.Join(dir, "s0.sock") + ",unix:" + filepath.Join(dir, "s1.sock")
	shardArgs := func(i int, extra ...string) []string {
		return append(append([]string{
			"-shard", string(rune('0' + i)), "-shards", "2", "-addrs", addrs,
		}, extra...), base...)
	}

	// Reference: uninterrupted single-process run.
	refDump := filepath.Join(dir, "ref.txt")
	var sink bytes.Buffer
	refArgs := append([]string{
		"-shards", "1", "-addrs", "unix:" + filepath.Join(dir, "ref.sock"), "-dump", refDump,
	}, base...)
	if err := run(context.Background(), parseCfg(t, refArgs...), &sink); err != nil {
		t.Fatal(err)
	}

	// Phase 1: both shards stop at superstep 6, each snapshotting its own
	// vertex range — the same cut a crash at that barrier leaves behind.
	ckpt := [2]string{filepath.Join(dir, "d0"), filepath.Join(dir, "d1")}
	errs := [2]error{}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out bytes.Buffer
			errs[i] = run(context.Background(), parseCfg(t,
				shardArgs(i, "-checkpoint-dir", ckpt[i], "-checkpoint-every", "1", "-max-supersteps", "6")...), &out)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "superstep limit") {
			t.Fatalf("shard %d: err = %v, want superstep limit", i, err)
		}
	}

	// Phase 2: restart both shards from their own latest snapshots
	// (-resume accepts the directory) and land on the reference bitwise.
	outs := runPair(t, func(i int) []string {
		return shardArgs(i, "-resume", ckpt[i], "-dump", filepath.Join(dir, "r"+string(rune('0'+i))+".txt"))
	})
	_ = outs
	ref := readFileT(t, refDump)
	for i := 0; i < 2; i++ {
		if got := readFileT(t, filepath.Join(dir, "r"+string(rune('0'+i))+".txt")); got != ref {
			t.Fatalf("resumed shard %d dump differs from the uninterrupted run", i)
		}
	}
}

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no workers", []string{"-gen", "grid:4:4", "-shards", "1", "-addrs", "unix:/tmp/x.sock"}, "-workers"},
		{"bad shard", []string{"-gen", "grid:4:4", "-workers", "2", "-shard", "3", "-shards", "2"}, "bad -shard"},
		{"no graph", []string{"-workers", "2", "-shards", "1", "-addrs", "unix:/tmp/x.sock"}, "need -gen or -edges"},
		{"addr count", []string{"-gen", "grid:4:4", "-workers", "2", "-shards", "2", "-addrs", "unix:/tmp/x.sock"}, "-addrs lists"},
		{"bad algo", []string{"-gen", "grid:4:4", "-workers", "2", "-shards", "1", "-addrs", "unix:/tmp/a.sock", "-algo", "nope"}, "unknown -algo"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := parseCfg(t, tc.args...)
			cfg.meshTimeout = 2 * time.Second
			var out bytes.Buffer
			err := run(context.Background(), cfg, &out)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}
