// Command dvbench regenerates the paper's evaluation tables and figures on
// the synthetic stand-in datasets, and snapshots the engine's
// message-plane micro-benchmarks.
//
// Usage:
//
//	dvbench -exp table1|table2|fig4|fig5|ablations|pregel|all [-runs N]
//	dvbench -exp pregel -json BENCH_pregel.json -label before|after
//	dvbench -exp fig4 -cpuprofile cpu.out -memprofile mem.out
//	dvbench -exp fig4 -timeout 30s
//
// A -timeout bounds the whole invocation; SIGINT (Ctrl-C) cancels it. In
// both cases the current run aborts at its next superstep barrier and
// dvbench exits 1 with the abort reason; pregel micro-benchmark rows
// measured before the abort keep their numbers and the remainder carry an
// abort_reason marker in the JSON snapshot.
//
// Output is plain text, one block per table/figure, with the ΔV / ΔV★ /
// Pregel+ rows of each experiment and a ratio summary for Figure 4. The
// pregel experiment emits engine micro-benchmark rows (ns/op, B/op,
// allocs/op) and, with -json, merges them into a labelled snapshot file so
// before/after engine changes stay diffable in-repo. The -cpuprofile and
// -memprofile flags write pprof profiles of the paper-table runs for
// `go tool pprof`.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig4, fig5, ablations, pregel, all")
	runs := flag.Int("runs", 3, "runs to average for timing experiments (paper: 3)")
	jsonPath := flag.String("json", "", "merge pregel micro-benchmark results into this JSON snapshot file")
	label := flag.String("label", "after", "snapshot label for -json (conventionally before/after)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the experiment run to this file")
	timeout := flag.Duration("timeout", 0, "abort the whole invocation after this duration (0 = no limit)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if err := profiled(*cpuprofile, *memprofile, func() error {
		return run(ctx, *exp, *runs, *jsonPath, *label)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "dvbench:", err)
		os.Exit(1)
	}
}

// profiled wraps fn with optional CPU and heap profiling so paper-table
// runs can be inspected with `go tool pprof`.
func profiled(cpuPath, memPath string, fn func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := fn(); err != nil {
		return err
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // materialize a settled heap before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

func run(ctx context.Context, exp string, runs int, jsonPath, label string) error {
	out := os.Stdout
	want := func(name string) bool { return exp == "all" || exp == name }
	any := false

	if want("table1") {
		any = true
		rows, err := bench.Table1()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "== Table 1: datasets ==")
		if err := bench.RenderTable1(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("table2") {
		any = true
		rows, err := bench.Table2()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "== Table 2: vertex-state size ==")
		if err := bench.RenderTable2(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("fig4") {
		any = true
		rows, err := bench.Figure4(ctx, runs)
		if err != nil {
			return err
		}
		if err := bench.RenderPerf(out, "Figure 4: runtime and messages (directed datasets)", rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := bench.RenderSummary(out, bench.Summarize(rows)); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("fig5") {
		any = true
		rows, err := bench.Figure5(ctx, runs)
		if err != nil {
			return err
		}
		if err := bench.RenderPerf(out, "Figure 5: Connected Components (undirected datasets)", rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("ablations") {
		any = true
		const ds = "livejournal-dg-s"
		mt, err := bench.AblationMemoTable(ctx, ds, runs)
		if err != nil {
			return err
		}
		if err := bench.RenderMemoTable(out, mt); err != nil {
			return err
		}
		fmt.Fprintln(out)
		eps, err := bench.AblationEpsilon(ctx, ds, []float64{0, 1e-9, 1e-6, 1e-4, 1e-3})
		if err != nil {
			return err
		}
		if err := bench.RenderEpsilon(out, ds, eps); err != nil {
			return err
		}
		fmt.Fprintln(out)
		sched, err := bench.AblationScheduler(ctx, ds, runs)
		if err != nil {
			return err
		}
		if err := bench.RenderScheduler(out, sched); err != nil {
			return err
		}
		fmt.Fprintln(out)
		comb, err := bench.AblationCombiner(ctx, ds, runs)
		if err != nil {
			return err
		}
		if err := bench.RenderCombiner(out, comb); err != nil {
			return err
		}
		fmt.Fprintln(out)
		part, err := bench.AblationPartition(ctx, "wikipedia-s", runs)
		if err != nil {
			return err
		}
		if err := bench.RenderPartition(out, part); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if exp == "pregel" { // excluded from "all": it re-times the engine for ~10s
		any = true
		rows := bench.PregelMicro(ctx)
		fmt.Fprintln(out, "== Engine micro-benchmarks: message plane ==")
		if err := bench.RenderMicro(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if jsonPath != "" {
			if err := bench.WriteMicroSnapshot(jsonPath, label, rows); err != nil {
				return err
			}
			fmt.Fprintf(out, "snapshot %q written to %s\n", label, jsonPath)
			if err := bench.RenderMicroDelta(out, jsonPath); err != nil {
				return err
			}
		}
	}
	if !any {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
