// Command dvbench regenerates the paper's evaluation tables and figures on
// the synthetic stand-in datasets, and snapshots the engine's
// message-plane micro-benchmarks.
//
// Usage:
//
//	dvbench -exp table1|table2|fig4|fig5|delta|ablations|pregel|memory|shard|all [-runs N]
//	dvbench -exp pregel -json BENCH_pregel.json -label before|after
//	dvbench -exp memory -scale 20,22 -json BENCH_memory.json
//	dvbench -exp shard -scale 14 -json BENCH_shard.json
//	dvbench -exp fig4 -cpuprofile cpu.out -memprofile mem.out
//	dvbench -exp fig4 -timeout 30s
//
// A -timeout bounds the whole invocation; SIGINT (Ctrl-C) cancels it. In
// both cases the current run aborts at its next superstep barrier and
// dvbench exits 1 with the abort reason. An abort in the middle of the
// suite no longer discards finished work: every experiment renders the
// rows it completed before the abort, followed by an "ABORTED:" marker,
// and the remaining experiments are still attempted (each marking its own
// abort). Likewise pregel micro-benchmark rows measured before the abort
// keep their numbers and the remainder carry an abort_reason marker in the
// JSON snapshot.
//
// Output is plain text, one block per table/figure, with the ΔV / ΔV★ /
// Pregel+ rows of each experiment and a ratio summary for Figure 4. The
// pregel experiment emits engine micro-benchmark rows (ns/op, B/op,
// allocs/op) and, with -json, merges them into a labelled snapshot file so
// before/after engine changes stay diffable in-repo. The -cpuprofile and
// -memprofile flags write pprof profiles of the paper-table runs for
// `go tool pprof`.
//
// The memory experiment loads R-MAT graphs (scales from the
// comma-separated -scale list) from DVGRAF files in all three graph
// representations — flat CSR, compact gap-varint CSR, mmap-backed — runs
// ΔV PageRank and SSSP over each, and reports structural bytes per arc,
// peak RSS over the load+run window, and ns per superstep, with
// flat-vs-compact ratio lines. With -json the rows land in
// BENCH_memory.json. Like pregel, it is excluded from "all".
//
// The shard experiment runs PageRank, SSSP, and CC in-process and split
// into two shards meshed over a unix socket (the dvshard wire path),
// reporting wall clock, wire traffic, and a value digest that must match
// between the two configurations. With -json the rows land in
// BENCH_shard.json. Like pregel and memory, it is excluded from "all".
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig4, fig5, delta, ablations, pregel, memory, shard, all")
	runs := flag.Int("runs", 3, "runs to average for timing experiments (paper: 3)")
	scale := flag.String("scale", "", "comma-separated R-MAT scales for -exp memory (default 20,22) or -exp shard (default 14)")
	jsonPath := flag.String("json", "", "write pregel, memory, or shard benchmark results to this JSON snapshot file")
	label := flag.String("label", "after", "snapshot label for -json (conventionally before/after)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the experiment run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the experiment run to this file")
	timeout := flag.Duration("timeout", 0, "abort the whole invocation after this duration (0 = no limit)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	scales, err := parseScales(*scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dvbench:", err)
		os.Exit(2)
	}

	if err := profiled(*cpuprofile, *memprofile, func() error {
		return run(ctx, *exp, *runs, scales, *jsonPath, *label)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "dvbench:", err)
		os.Exit(1)
	}
}

// profiled wraps fn with optional CPU and heap profiling so paper-table
// runs can be inspected with `go tool pprof`.
func profiled(cpuPath, memPath string, fn func() error) error {
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := fn(); err != nil {
		return err
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC() // materialize a settled heap before snapshotting
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

// parseScales parses the -scale list; empty means the experiment default.
func parseScales(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 || v > 30 {
			return nil, fmt.Errorf("bad -scale entry %q (want an integer in 1..30)", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func run(ctx context.Context, exp string, runs int, scales []int, jsonPath, label string) error {
	out := os.Stdout
	want := func(name string) bool { return exp == "all" || exp == name }
	any := false

	// An abort inside one experiment must not discard the others: the rows
	// completed before the abort are rendered with a marker, the remaining
	// experiments still run (and typically mark their own abort immediately,
	// since they share ctx), and the first abort error decides the exit code.
	var firstErr error
	aborted := func(err error) {
		fmt.Fprintf(out, "ABORTED: %v — rows above are the measurements completed before the abort\n\n", err)
		if firstErr == nil {
			firstErr = err
		}
	}

	if want("table1") {
		any = true
		rows, err := bench.Table1()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "== Table 1: datasets ==")
		if err := bench.RenderTable1(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("table2") {
		any = true
		rows, err := bench.Table2()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "== Table 2: vertex-state size ==")
		if err := bench.RenderTable2(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("fig4") {
		any = true
		rows, err := bench.Figure4(ctx, runs)
		if rerr := bench.RenderPerf(out, "Figure 4: runtime and messages (directed datasets)", rows); rerr != nil {
			return rerr
		}
		fmt.Fprintln(out)
		if err != nil {
			aborted(err)
		} else {
			if err := bench.RenderSummary(out, bench.Summarize(rows)); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
	}
	if want("fig5") {
		any = true
		rows, err := bench.Figure5(ctx, runs)
		if rerr := bench.RenderPerf(out, "Figure 5: Connected Components (undirected datasets)", rows); rerr != nil {
			return rerr
		}
		fmt.Fprintln(out)
		if err != nil {
			aborted(err)
		}
	}
	if want("delta") {
		any = true
		rows, err := bench.DeltaRecompute(ctx, runs)
		fmt.Fprintln(out, "== Streaming delta: full rerun vs delta-recompute ==")
		if rerr := bench.RenderDelta(out, rows); rerr != nil {
			return rerr
		}
		fmt.Fprintln(out)
		if err != nil {
			aborted(err)
		}
	}
	if want("ablations") {
		any = true
		const ds = "livejournal-dg-s"
		// Each step returns (abort error, render error); the first abort
		// marks the block and skips the remaining ablations, which share the
		// cancelled ctx and could only add empty tables.
		steps := []func() (error, error){
			func() (error, error) {
				mt, err := bench.AblationMemoTable(ctx, ds, runs)
				return err, bench.RenderMemoTable(out, mt)
			},
			func() (error, error) {
				eps, err := bench.AblationEpsilon(ctx, ds, []float64{0, 1e-9, 1e-6, 1e-4, 1e-3})
				return err, bench.RenderEpsilon(out, ds, eps)
			},
			func() (error, error) {
				sched, err := bench.AblationScheduler(ctx, ds, runs)
				return err, bench.RenderScheduler(out, sched)
			},
			func() (error, error) {
				comb, err := bench.AblationCombiner(ctx, ds, runs)
				return err, bench.RenderCombiner(out, comb)
			},
			func() (error, error) {
				part, err := bench.AblationPartition(ctx, "wikipedia-s", runs)
				return err, bench.RenderPartition(out, part)
			},
		}
		for _, step := range steps {
			abortErr, renderErr := step()
			if renderErr != nil {
				return renderErr
			}
			fmt.Fprintln(out)
			if abortErr != nil {
				aborted(abortErr)
				break
			}
		}
	}
	if exp == "pregel" { // excluded from "all": it re-times the engine for ~10s
		any = true
		rows := bench.PregelMicro(ctx)
		fmt.Fprintln(out, "== Engine micro-benchmarks: message plane ==")
		if err := bench.RenderMicro(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if jsonPath != "" {
			if err := bench.WriteMicroSnapshot(jsonPath, label, rows); err != nil {
				return err
			}
			fmt.Fprintf(out, "snapshot %q written to %s\n", label, jsonPath)
			if err := bench.RenderMicroDelta(out, jsonPath); err != nil {
				return err
			}
		}
	}
	if exp == "memory" { // excluded from "all": generates multi-GB graphs
		any = true
		rows, err := bench.MemoryExperiment(ctx, scales, runs)
		fmt.Fprintln(out, "== Memory: graph representation axis (R-MAT, dV PageRank/SSSP) ==")
		if rerr := bench.RenderMemory(out, rows); rerr != nil {
			return rerr
		}
		fmt.Fprintln(out)
		if err != nil {
			aborted(err)
		} else {
			if err := bench.RenderMemorySummary(out, bench.SummarizeMemory(rows)); err != nil {
				return err
			}
			fmt.Fprintln(out)
			if jsonPath != "" {
				if err := bench.WriteMemorySnapshot(jsonPath, rows); err != nil {
					return err
				}
				fmt.Fprintf(out, "memory snapshot written to %s\n", jsonPath)
			}
		}
	}
	if exp == "shard" { // excluded from "all": spins up socket meshes
		any = true
		shardScale := 14
		if len(scales) > 0 {
			shardScale = scales[0]
		}
		rows, err := bench.ShardExperiment(ctx, shardScale, runs)
		fmt.Fprintln(out, "== Sharded message plane: in-process vs 2 shards over a unix socket ==")
		if rerr := bench.RenderShard(out, rows); rerr != nil {
			return rerr
		}
		fmt.Fprintln(out)
		if err != nil {
			aborted(err)
		} else if jsonPath != "" {
			if err := bench.WriteShardSnapshot(jsonPath, rows); err != nil {
				return err
			}
			fmt.Fprintf(out, "shard snapshot written to %s\n", jsonPath)
		}
	}
	if !any {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return firstErr
}
