// Command dvbench regenerates the paper's evaluation tables and figures on
// the synthetic stand-in datasets.
//
// Usage:
//
//	dvbench -exp table1|table2|fig4|fig5|ablations|all [-runs N]
//
// Output is plain text, one block per table/figure, with the ΔV / ΔV★ /
// Pregel+ rows of each experiment and a ratio summary for Figure 4.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig4, fig5, ablations, all")
	runs := flag.Int("runs", 3, "runs to average for timing experiments (paper: 3)")
	flag.Parse()

	if err := run(*exp, *runs); err != nil {
		fmt.Fprintln(os.Stderr, "dvbench:", err)
		os.Exit(1)
	}
}

func run(exp string, runs int) error {
	out := os.Stdout
	want := func(name string) bool { return exp == "all" || exp == name }
	any := false

	if want("table1") {
		any = true
		rows, err := bench.Table1()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "== Table 1: datasets ==")
		if err := bench.RenderTable1(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("table2") {
		any = true
		rows, err := bench.Table2()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "== Table 2: vertex-state size ==")
		if err := bench.RenderTable2(out, rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("fig4") {
		any = true
		rows, err := bench.Figure4(runs)
		if err != nil {
			return err
		}
		if err := bench.RenderPerf(out, "Figure 4: runtime and messages (directed datasets)", rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
		if err := bench.RenderSummary(out, bench.Summarize(rows)); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("fig5") {
		any = true
		rows, err := bench.Figure5(runs)
		if err != nil {
			return err
		}
		if err := bench.RenderPerf(out, "Figure 5: Connected Components (undirected datasets)", rows); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if want("ablations") {
		any = true
		const ds = "livejournal-dg-s"
		mt, err := bench.AblationMemoTable(ds, runs)
		if err != nil {
			return err
		}
		if err := bench.RenderMemoTable(out, mt); err != nil {
			return err
		}
		fmt.Fprintln(out)
		eps, err := bench.AblationEpsilon(ds, []float64{0, 1e-9, 1e-6, 1e-4, 1e-3})
		if err != nil {
			return err
		}
		if err := bench.RenderEpsilon(out, ds, eps); err != nil {
			return err
		}
		fmt.Fprintln(out)
		sched, err := bench.AblationScheduler(ds, runs)
		if err != nil {
			return err
		}
		if err := bench.RenderScheduler(out, sched); err != nil {
			return err
		}
		fmt.Fprintln(out)
		comb, err := bench.AblationCombiner(ds, runs)
		if err != nil {
			return err
		}
		if err := bench.RenderCombiner(out, comb); err != nil {
			return err
		}
		fmt.Fprintln(out)
		part, err := bench.AblationPartition("wikipedia-s", runs)
		if err != nil {
			return err
		}
		if err := bench.RenderPartition(out, part); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	if !any {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
