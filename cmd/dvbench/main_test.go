package main

import (
	"context"
	"os"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	if errRun != nil {
		t.Fatalf("run: %v", errRun)
	}
	return string(buf[:n])
}

func TestRunTable1(t *testing.T) {
	out := captureStdout(t, func() error { return run(context.Background(), "table1", 1, "", "") })
	for _, want := range []string{"Table 1", "wikipedia-s", "facebook-s", "136.54M"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable2(t *testing.T) {
	out := captureStdout(t, func() error { return run(context.Background(), "table2", 1, "", "") })
	if !strings.Contains(out, "48B") || !strings.Contains(out, "pagerank") {
		t.Fatalf("table2 output:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), "bogus", 1, "", ""); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestProfiledWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := dir + "/cpu.out"
	mem := dir + "/mem.out"
	ran := false
	if err := profiled(cpu, mem, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("profiled did not invoke fn")
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("missing profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("empty profile %s", p)
		}
	}
}
