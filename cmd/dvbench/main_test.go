package main

import (
	"context"
	"errors"
	"os"
	"strings"
	"testing"
)

func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	if errRun != nil {
		t.Fatalf("run: %v", errRun)
	}
	return string(buf[:n])
}

func TestRunTable1(t *testing.T) {
	out := captureStdout(t, func() error { return run(context.Background(), "table1", 1, nil, "", "") })
	for _, want := range []string{"Table 1", "wikipedia-s", "facebook-s", "136.54M"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable2(t *testing.T) {
	out := captureStdout(t, func() error { return run(context.Background(), "table2", 1, nil, "", "") })
	if !strings.Contains(out, "48B") || !strings.Contains(out, "pagerank") {
		t.Fatalf("table2 output:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(context.Background(), "bogus", 1, nil, "", ""); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestProfiledWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := dir + "/cpu.out"
	mem := dir + "/mem.out"
	ran := false
	if err := profiled(cpu, mem, func() error { ran = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("profiled did not invoke fn")
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("missing profile %s: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("empty profile %s", p)
		}
	}
}

// captureStdoutErr is captureStdout for invocations expected to fail: it
// returns both the rendered output and the error.
func captureStdoutErr(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), errRun
}

// TestRunAbortKeepsCompletedExperiments is the mid-suite abort regression
// test: cancelling between experiments must not discard the experiments
// that already rendered. With a cancelled ctx, the ctx-free tables still
// print in full, every timed experiment renders its (empty) table with an
// ABORTED marker, later experiments are still attempted, and the first
// abort error decides the exit status.
func TestRunAbortKeepsCompletedExperiments(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // "between experiments": before any timed measurement starts
	out, err := captureStdoutErr(t, func() error { return run(ctx, "all", 1, nil, "", "") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, want := range []string{
		"Table 1", "136.54M", // ctx-free experiments completed in full
		"Table 2", "pagerank",
		"Figure 4", "Figure 5", // timed experiments still rendered headers…
		"Streaming delta",          // …including the delta-recompute block…
		"ABORTED:",                 // …with abort markers
		"lookup-table memoization", // and the suite continued into ablations
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "ABORTED:"); n != 4 { // fig4, fig5, delta, first ablation
		t.Fatalf("ABORTED markers = %d, want 4:\n%s", n, out)
	}
}
