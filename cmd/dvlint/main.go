// Command dvlint runs the repo's determinism linter (internal/lint) over
// package directories: it forbids map-range iteration and time.Now on the
// deterministic fold/repair paths unless the site carries a
// "//lint:allow maprange|timenow — reason" annotation.
//
// Usage:
//
//	dvlint dir...
//
// Each dir must hold exactly one Go package (tests are skipped). Findings
// print as "file:line:col: check: message"; the exit status is 1 when
// anything is found, 2 on usage or parse errors.
//
// Example:
//
//	dvlint ./internal/core ./internal/deltav/vm ./internal/pregel ./internal/serve
package main

import (
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: dvlint dir...")
		os.Exit(2)
	}
	found := false
	for _, dir := range os.Args[1:] {
		findings, err := lint.Package(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dvlint:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			found = true
			fmt.Println(f)
		}
	}
	if found {
		os.Exit(1)
	}
}
