// Command dvserve keeps a ΔV program converged over a live graph and
// serves reads while mutations stream in: the always-on counterpart of a
// one-shot dvrun. It loads a graph, converges the program once, then
// answers point reads from an immutable published version while POSTed
// edge mutations accumulate into batches that are repaired in place with
// delta recomputation (falling back to a from-scratch rerun when a batch
// is outside the repairable class).
//
// Usage:
//
//	dvserve [-mode dv|dvstar|memotable] (-program name | -file prog.dv)
//	        (-dataset name | -edges file [-directed] | -gen spec [-seed n])
//	        [-graph-format auto|el|dvg] [-repr flat|compact|mmap]
//	        [-param k=v]... [-workers N] [-queue] [-hash] [-combine]
//	        [-epsilon e] [-addr host:port]
//	        [-batch-interval d] [-max-batch N] [-max-pending N]
//	        [-no-quarantine] [-chain-dir dir] [-repair-budget f]
//
// Graph sources, generator specs, -graph-format and -repr behave exactly
// as in dvrun. The HTTP API (see internal/serve):
//
//	GET  /healthz          liveness
//	GET  /stats            counters + published version info
//	GET  /value/{v}        one vertex's value (?field= selects which)
//	GET  /neighbors/{v}    out-neighbors (+weights when weighted)
//	POST /mutate           deltaio text (add/del/set/addv lines)
//	POST /flush            apply the pending batch now
//
// Mutations are batched: every -batch-interval (default 3s), or as soon
// as -max-batch entries are pending, the log is collapsed into one
// graph delta and repaired. -max-pending bounds the log; beyond it
// POST /mutate returns 503 until a batch drains. Vertex-program panics
// are quarantined to the panicking vertex by default so a poisoned
// vertex cannot take the daemon down; -no-quarantine restores
// fail-stop behavior for debugging.
//
// -chain-dir persists every published version to a checkpoint chain: a
// full base snapshot at boot, then per batch an atomic (mutation log +
// incremental snapshot record) commit. Restarting dvserve with the same
// -chain-dir and the same graph flags replays the chain and resumes
// serving at the epoch the previous process reached — no superstep is
// re-executed and no full vertex state is reread (the startup log says
// "chain: seeded epoch N"). The chain stores mutations, not the boot
// graph, so the graph flags must rebuild the graph the chain was started
// from. -repair-budget bounds each repair to ceil(f × S) body supersteps
// (S = supersteps of the fixpoint being repaired); past that the repair
// has lost to the from-scratch rerun it was supposed to undercut, so the
// batch falls back (counted as budget_fallback_batches in /stats). 0
// disables the bound.
//
// On startup dvserve prints the program's static repairability matrix
// (one "repairability MODE: class=verdict ..." line — which mutation
// classes the batcher can repair in place and which are admitted straight
// to the from-scratch path; see dvc vet's repairability analyzer for the
// reasons), then "dvserve: listening on http://ADDR" once the socket is
// bound; SIGINT shuts down gracefully.
//
// Examples:
//
//	dvserve -program sssp -gen grid:50:50 -param src=0 -addr :7473
//	curl localhost:7473/value/120
//	printf 'add 3 120 1\n' | curl -s --data-binary @- localhost:7473/mutate
//	curl -s -X POST localhost:7473/flush
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/programs"
	"repro/internal/serve"
)

type paramFlags map[string]float64

func (p paramFlags) String() string { return fmt.Sprint(map[string]float64(p)) }

func (p paramFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return err
	}
	p[k] = f
	return nil
}

// flagVals holds the parsed flag values; registerFlags binds them onto a
// FlagSet so tests can enumerate the registered flags and check them
// against the doc comment above.
type flagVals struct {
	mode, progName, file string
	dataset, edges, gen  string
	graphFormat, repr    string
	directed             bool
	seed                 int64
	workers              int
	queue, hash, combine bool
	epsilon              float64
	addr                 string
	batchInterval        time.Duration
	maxBatch, maxPending int
	noQuarantine         bool
	chainDir             string
	repairBudget         float64
	params               paramFlags
}

func registerFlags(fs *flag.FlagSet) *flagVals {
	v := &flagVals{params: paramFlags{}}
	fs.StringVar(&v.mode, "mode", "dv", "compile mode: dv, dvstar, memotable")
	fs.StringVar(&v.progName, "program", "", "embedded program name")
	fs.StringVar(&v.file, "file", "", "ΔV source file")
	fs.StringVar(&v.dataset, "dataset", "", "stand-in dataset name")
	fs.StringVar(&v.edges, "edges", "", "edge-list file")
	fs.BoolVar(&v.directed, "directed", true, "treat -edges input as directed")
	fs.StringVar(&v.gen, "gen", "", "generator spec (rmat:scale:ef, ba:n:k, er:n:m, grid:r:c, ws:n:k:beta)")
	fs.StringVar(&v.graphFormat, "graph-format", "auto", "-edges file format: auto (sniff), el (text edge list), dvg (DVGRAF binary)")
	fs.StringVar(&v.repr, "repr", "flat", "in-memory graph representation: flat, compact, mmap (mmap needs a DVGRAF -edges file)")
	fs.Int64Var(&v.seed, "seed", 1, "generator seed")
	fs.IntVar(&v.workers, "workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	fs.BoolVar(&v.queue, "queue", false, "use the work-queue (halt-by-default) scheduler")
	fs.BoolVar(&v.hash, "hash", false, "use hash (v mod W) vertex placement instead of blocks")
	fs.BoolVar(&v.combine, "combine", true, "enable message combiners")
	fs.Float64Var(&v.epsilon, "epsilon", 0, "allowable-slop ε (§9)")
	fs.StringVar(&v.addr, "addr", "127.0.0.1:7473", "HTTP listen address")
	fs.DurationVar(&v.batchInterval, "batch-interval", 3*time.Second, "periodic mutation-batch repair cadence (0 = only -max-batch / POST /flush)")
	fs.IntVar(&v.maxBatch, "max-batch", 0, "repair as soon as this many mutations are pending (0 = max-pending)")
	fs.IntVar(&v.maxPending, "max-pending", 65536, "bound on the pending mutation log; POST /mutate returns 503 beyond it")
	fs.BoolVar(&v.noQuarantine, "no-quarantine", false, "abort on vertex-program panics instead of quarantining the vertex")
	fs.StringVar(&v.chainDir, "chain-dir", "", "checkpoint-chain directory: persist every published version and resume from it on restart")
	fs.Float64Var(&v.repairBudget, "repair-budget", 0, "abandon a repair past ceil(f × supersteps) body supersteps and recompute from scratch (0 = unbounded)")
	fs.Var(v.params, "param", "program parameter override, name=value (repeatable)")
	return v
}

func main() {
	vals := registerFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, vals, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "dvserve:", err)
		os.Exit(1)
	}
}

// run builds the server and serves until ctx is cancelled. The listening
// line is written to out once the socket is bound.
func run(ctx context.Context, v *flagVals, out *os.File) error {
	var mode core.Mode
	switch v.mode {
	case "dv":
		mode = core.Incremental
	case "dvstar":
		mode = core.Baseline
	case "memotable":
		mode = core.MemoTable
	default:
		return fmt.Errorf("unknown mode %q", v.mode)
	}
	var src string
	switch {
	case v.progName != "":
		s, err := programs.Source(v.progName)
		if err != nil {
			return err
		}
		src = s
	case v.file != "":
		b, err := os.ReadFile(v.file)
		if err != nil {
			return err
		}
		src = string(b)
	default:
		return fmt.Errorf("need -program or -file")
	}
	prog, err := core.Compile(src, core.Options{Mode: mode, Epsilon: v.epsilon})
	if err != nil {
		return err
	}
	fmt.Fprintln(out, prog.Repairability())
	g, err := loadGraph(v)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "graph: n=%d arcs=%d repr=%s bytes=%d\n",
		g.NumVertices(), g.NumArcs(), g.Repr(), g.ArcBytes())

	sched := pregel.ScanAll
	if v.queue {
		sched = pregel.WorkQueue
	}
	part := pregel.PartitionBlock
	if v.hash {
		part = pregel.PartitionHash
	}
	srv, err := serve.New(ctx, serve.Config{
		Prog:          prog,
		Graph:         g,
		Params:        v.params,
		Workers:       v.workers,
		Scheduler:     sched,
		Partition:     part,
		Combine:       v.combine,
		Quarantine:    !v.noQuarantine,
		MaxPending:    v.maxPending,
		MaxBatch:      v.maxBatch,
		BatchInterval: v.batchInterval,
		ChainDir:      v.chainDir,
		RepairBudget:  v.repairBudget,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		g.Close()
		return err
	}
	defer srv.Close()
	st := srv.Stats()
	fmt.Fprintf(out, "converged: superstep=%d fingerprint=%s fields=%v\n",
		st.Superstep, st.Fingerprint, st.Fields)

	ln, err := net.Listen("tcp", v.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(out, "dvserve: listening on http://%s\n", ln.Addr())
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return hs.Shutdown(shutCtx)
}

// loadGraph resolves the one graph source, mirroring dvrun's rules.
func loadGraph(v *flagVals) (*graph.Graph, error) {
	var sources []string
	if v.dataset != "" {
		sources = append(sources, "-dataset")
	}
	if v.edges != "" {
		sources = append(sources, "-edges")
	}
	if v.gen != "" {
		sources = append(sources, "-gen")
	}
	switch len(sources) {
	case 0:
		return nil, fmt.Errorf("need one of -dataset, -edges, -gen")
	case 1:
	default:
		return nil, fmt.Errorf("conflicting graph sources: %s — pick exactly one", strings.Join(sources, " and "))
	}
	var g *graph.Graph
	switch {
	case v.dataset != "":
		d, err := graph.DatasetByName(v.dataset)
		if err != nil {
			return nil, err
		}
		g = d.Build()
	case v.edges != "":
		dvg, err := isDVGRAF(v.graphFormat, v.edges)
		if err != nil {
			return nil, err
		}
		if dvg {
			mode, err := loadModeOf(v.repr)
			if err != nil {
				return nil, err
			}
			return graph.ReadGraphFile(v.edges, mode)
		}
		f, err := os.Open(v.edges)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err = graph.ReadEdgeList(f, v.directed)
		if err != nil {
			return nil, err
		}
	default:
		g2, err := generate(v.gen, v.directed, v.seed)
		if err != nil {
			return nil, err
		}
		g = g2
	}
	switch v.repr {
	case "", "flat":
		return g, nil
	case "compact":
		return graph.Compact(g)
	case "mmap":
		return nil, fmt.Errorf("-repr mmap needs a DVGRAF -edges file (make one with dvrun -save-graph)")
	}
	return nil, fmt.Errorf("unknown representation %q (want flat, compact or mmap)", v.repr)
}

func isDVGRAF(format, path string) (bool, error) {
	switch format {
	case "", "auto":
		return graph.IsGraphFile(path), nil
	case "el":
		return false, nil
	case "dvg":
		return true, nil
	}
	return false, fmt.Errorf("unknown -graph-format %q (want auto, el or dvg)", format)
}

func loadModeOf(repr string) (graph.LoadMode, error) {
	switch repr {
	case "", "flat":
		return graph.LoadFlat, nil
	case "compact":
		return graph.LoadCompact, nil
	case "mmap":
		return graph.LoadMmap, nil
	}
	return 0, fmt.Errorf("unknown representation %q (want flat, compact or mmap)", repr)
}

func generate(spec string, directed bool, seed int64) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	atoi := func(i int) int {
		if i >= len(parts) {
			return 0
		}
		n, _ := strconv.Atoi(parts[i])
		return n
	}
	switch parts[0] {
	case "rmat":
		return graph.RMAT(atoi(1), atoi(2), 0.57, 0.19, 0.19, directed, seed), nil
	case "ba":
		return graph.PreferentialAttachment(atoi(1), atoi(2), seed), nil
	case "er":
		return graph.ErdosRenyi(atoi(1), atoi(2), directed, seed), nil
	case "grid":
		return graph.Grid(atoi(1), atoi(2), 10, seed), nil
	case "ws":
		beta := 0.1
		if len(parts) > 3 {
			if b, err := strconv.ParseFloat(parts[3], 64); err == nil {
				beta = b
			}
		}
		return graph.WattsStrogatz(atoi(1), atoi(2), beta, seed), nil
	}
	return nil, fmt.Errorf("unknown generator %q", parts[0])
}
