package main

import (
	"flag"
	"os"
	"strings"
	"testing"
	"time"
)

// TestDocCommentListsAllFlags guards against doc drift: every flag
// registered by registerFlags must be mentioned as "-name" in this file's
// package doc comment (the Usage block), and vice versa nothing forces the
// doc to shrink — new flags must be documented as they are added.
func TestDocCommentListsAllFlags(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	doc, _, ok := strings.Cut(string(src), "\npackage main")
	if !ok {
		t.Fatal("cannot locate package clause in main.go")
	}
	fs := flag.NewFlagSet("dvserve", flag.ContinueOnError)
	registerFlags(fs)
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(doc, "-"+f.Name) {
			t.Errorf("flag -%s is registered but missing from the doc comment Usage block", f.Name)
		}
	})
}

func TestRegisterFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("dvserve", flag.ContinueOnError)
	vals := registerFlags(fs)
	if err := fs.Parse([]string{
		"-mode", "memotable", "-program", "pagerank", "-gen", "rmat:5:4",
		"-addr", "127.0.0.1:0", "-batch-interval", "150ms",
		"-max-batch", "8", "-max-pending", "64", "-no-quarantine",
		"-param", "src=3", "-queue",
	}); err != nil {
		t.Fatal(err)
	}
	if vals.mode != "memotable" || vals.progName != "pagerank" || vals.gen != "rmat:5:4" {
		t.Fatalf("vals = %+v", vals)
	}
	if vals.addr != "127.0.0.1:0" || vals.batchInterval != 150*time.Millisecond {
		t.Fatalf("vals = %+v", vals)
	}
	if vals.maxBatch != 8 || vals.maxPending != 64 || !vals.noQuarantine || !vals.queue {
		t.Fatalf("vals = %+v", vals)
	}
	if vals.params["src"] != 3 {
		t.Fatalf("params = %v", vals.params)
	}
}

// TestRunErrorPaths covers the CLI-boundary failures that must be caught
// before a listener is opened.
func TestRunErrorPaths(t *testing.T) {
	cases := []*flagVals{
		{mode: "dv", params: paramFlags{}},                                                      // no program
		{mode: "bogus", progName: "sssp", gen: "grid:3:3", params: paramFlags{}},                // bad mode
		{mode: "dv", progName: "sssp", params: paramFlags{}},                                    // no graph
		{mode: "dv", progName: "sssp", gen: "bogus:1", params: paramFlags{}},                    // bad generator
		{mode: "dv", progName: "nope", gen: "grid:3:3", params: paramFlags{}},                   // unknown program
		{mode: "dv", progName: "sssp", gen: "grid:3:3", params: paramFlags{"q": 1}},             // unknown param
		{mode: "dv", progName: "sssp", edges: "/nonexistent", params: paramFlags{}},             // missing file
		{mode: "dv", progName: "sssp", gen: "grid:3:3", dataset: "x", params: paramFlags{}},     // two sources
		{mode: "dv", progName: "sssp", gen: "grid:3:3", repr: "mmap", params: paramFlags{}},     // mmap needs dvg
		{mode: "dv", progName: "sssp", gen: "grid:3:3", repr: "bogus", params: paramFlags{}},    // bad repr
		{mode: "dv", file: "/nonexistent.dv", gen: "grid:3:3", params: paramFlags{}},            // missing source file
		{mode: "dv", progName: "sssp", gen: "grid:3:3", addr: "bogus:::", params: paramFlags{}}, // bad listen addr
	}
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	for i, v := range cases {
		if err := run(t.Context(), v, null); err == nil {
			t.Fatalf("case %d: run succeeded, want error", i)
		}
	}
}
