// Command dvrun compiles a ΔV program and executes it on a graph,
// reporting run statistics and (optionally) result values.
//
// Usage:
//
//	dvrun [-mode dv|dvstar|memotable] (-program name | -file prog.dv)
//	      (-dataset name | -edges file [-directed] | -gen spec [-seed n])
//	      [-graph-format auto|el|dvg] [-repr flat|compact|mmap]
//	      [-save-graph out.dvg]
//	      [-param k=v]... [-workers N] [-queue] [-hash] [-combine] [-epsilon e]
//	      [-show field] [-top N] [-trace] [-timeout d]
//	      [-checkpoint-dir dir [-checkpoint-every N] [-checkpoint-incremental]]
//	      [-resume snapshot-or-chain-dir]
//	      [-mutations log.dvdelta [-warm-start snapshot]]
//
// Exactly one graph source (-dataset, -edges or -gen) must be given;
// conflicting sources are an error. Generator specs: rmat:scale:edgefactor,
// ba:n:k, er:n:m, grid:rows:cols, ws:n:k:beta (Watts–Strogatz small world).
//
// -edges accepts a text edge list or a binary DVGRAF graph file;
// -graph-format pins the interpretation (auto sniffs the DVGRAF magic, so
// .dvg files just work). -repr picks the in-memory representation: flat
// CSR, compact (gap-varint adjacency, ~4x smaller on power-law graphs), or
// mmap (page the compact sections straight from a DVGRAF file; requires
// one). After loading, dvrun prints a "graph: n=… arcs=… repr=… bytes=…"
// line so the resident adjacency footprint is visible in every run.
// -save-graph writes the loaded graph as DVGRAF and may be used without a
// program to convert an edge list or generator output into a .dvg file.
//
// A -timeout bounds the whole run; SIGINT (Ctrl-C) cancels it. In both
// cases the run aborts at its next superstep barrier, dvrun prints the
// statistics accumulated so far with an "aborted:" line (and, with -trace,
// the completed per-superstep rows), and exits 1.
//
// -checkpoint-dir enables barrier snapshots: one snap-NNNNNN.dvsnap file
// per checkpointed superstep (every -checkpoint-every supersteps, plus a
// final snapshot at the terminal barrier and on any abort). The freshest
// snapshot path and its superstep are printed as a "checkpoint:" line.
// With -checkpoint-incremental the directory instead holds a checkpoint
// chain: a full base snapshot, then one compact DVSNPD delta record per
// barrier (rebased periodically), so steady-state checkpoint bytes scale
// with what a superstep touched rather than with graph size.
// -resume continues a run from a snapshot file or from such a chain
// directory (the chain is replayed to its tip) — the same program, mode,
// params, graph and scheduler flags must be given (the graph fingerprint
// and scheduler are validated) — executing only the remaining supersteps.
//
// -mutations applies a streaming edge-mutation log (see graph.ReadDeltaLog
// for the text format: add/del/set/addv lines) to the loaded graph
// before running. On its own this re-runs the program from scratch on the
// mutated graph. Adding -warm-start snapshot instead performs a
// delta-recomputation warm restart: the snapshot must be the terminal
// checkpoint of a converged run on the pre-mutation graph, and only the
// contributions invalidated by the mutations are retracted, re-injected
// and propagated. -warm-start requires -mutations and conflicts with
// -resume.
//
// Examples:
//
//	dvrun -program pagerank -dataset wikipedia-s
//	dvrun -program sssp -gen grid:50:50 -param src=0 -show dist -top 5
//	dvrun -program pagerank -gen rmat:20:16 -timeout 10s -trace
//	dvrun -gen rmat:22:16 -save-graph rmat22.dvg
//	dvrun -program pagerank -edges rmat22.dvg -repr mmap
//	dvrun -program sssp -gen grid:50:50 -param src=0 -checkpoint-dir ck
//	dvrun -program sssp -gen grid:50:50 -param src=0 \
//	      -mutations edits.dvdelta -warm-start ck/snap-000102.dvsnap
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/deltav/vm"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/programs"
)

type paramFlags map[string]float64

func (p paramFlags) String() string { return fmt.Sprint(map[string]float64(p)) }

func (p paramFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return err
	}
	p[k] = f
	return nil
}

// flagVals holds the parsed flag values; registerFlags binds them onto a
// FlagSet so tests can enumerate the registered flags and check them
// against the doc comment above.
type flagVals struct {
	mode, progName, file string
	dataset, edges, gen  string
	graphFormat, repr    string
	saveGraph            string
	directed             bool
	seed                 int64
	workers              int
	queue, hash, combine bool
	trace                bool
	epsilon              float64
	show                 string
	top                  int
	timeout              time.Duration
	ckptDir              string
	ckptEvery            int
	ckptIncremental      bool
	resume               string
	mutations            string
	warmStart            string
	params               paramFlags
}

func registerFlags(fs *flag.FlagSet) *flagVals {
	v := &flagVals{params: paramFlags{}}
	fs.StringVar(&v.mode, "mode", "dv", "compile mode: dv, dvstar, memotable")
	fs.StringVar(&v.progName, "program", "", "embedded program name")
	fs.StringVar(&v.file, "file", "", "ΔV source file")
	fs.StringVar(&v.dataset, "dataset", "", "stand-in dataset name")
	fs.StringVar(&v.edges, "edges", "", "edge-list file")
	fs.BoolVar(&v.directed, "directed", true, "treat -edges input as directed")
	fs.StringVar(&v.gen, "gen", "", "generator spec (rmat:scale:ef, ba:n:k, er:n:m, grid:r:c, ws:n:k:beta)")
	fs.StringVar(&v.graphFormat, "graph-format", "auto", "-edges file format: auto (sniff), el (text edge list), dvg (DVGRAF binary)")
	fs.StringVar(&v.repr, "repr", "flat", "in-memory graph representation: flat, compact, mmap (mmap needs a DVGRAF -edges file)")
	fs.StringVar(&v.saveGraph, "save-graph", "", "write the loaded graph to this DVGRAF (.dvg) file")
	fs.Int64Var(&v.seed, "seed", 1, "generator seed")
	fs.IntVar(&v.workers, "workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	fs.BoolVar(&v.queue, "queue", false, "use the work-queue (halt-by-default) scheduler")
	fs.BoolVar(&v.hash, "hash", false, "use hash (v mod W) vertex placement instead of blocks")
	fs.BoolVar(&v.combine, "combine", true, "enable message combiners")
	fs.BoolVar(&v.trace, "trace", false, "print per-superstep statistics")
	fs.Float64Var(&v.epsilon, "epsilon", 0, "allowable-slop ε (§9)")
	fs.StringVar(&v.show, "show", "", "print this field's values")
	fs.IntVar(&v.top, "top", 10, "how many values to print with -show")
	fs.DurationVar(&v.timeout, "timeout", 0, "abort the run after this duration (0 = no limit)")
	fs.StringVar(&v.ckptDir, "checkpoint-dir", "", "write barrier snapshots into this directory")
	fs.IntVar(&v.ckptEvery, "checkpoint-every", 0, "periodic snapshot interval in supersteps (0 = final/abort snapshots only)")
	fs.BoolVar(&v.ckptIncremental, "checkpoint-incremental", false, "write the checkpoints as an incremental chain (base + DVSNPD delta records) instead of full snapshots")
	fs.StringVar(&v.resume, "resume", "", "resume from a snapshot file or a -checkpoint-incremental chain directory")
	fs.StringVar(&v.mutations, "mutations", "", "apply this edge-mutation log (add/del/set/addv) to the graph before running")
	fs.StringVar(&v.warmStart, "warm-start", "", "delta-recompute from this converged pre-mutation snapshot (needs -mutations)")
	fs.Var(v.params, "param", "program parameter override, name=value (repeatable)")
	return v
}

func (v *flagVals) config() runConfig {
	return runConfig{
		mode: v.mode, progName: v.progName, file: v.file,
		dataset: v.dataset, edges: v.edges, directed: v.directed, gen: v.gen, seed: v.seed,
		graphFormat: v.graphFormat, repr: v.repr, saveGraph: v.saveGraph,
		workers: v.workers, queue: v.queue, hash: v.hash, combine: v.combine,
		epsilon: v.epsilon, show: v.show, top: v.top, trace: v.trace,
		timeout: v.timeout, ckptDir: v.ckptDir, ckptEvery: v.ckptEvery,
		ckptIncremental: v.ckptIncremental,
		resume:          v.resume, mutations: v.mutations, warmStart: v.warmStart, params: v.params,
	}
}

func main() {
	vals := registerFlags(flag.CommandLine)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, vals.config()); err != nil {
		fmt.Fprintln(os.Stderr, "dvrun:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	mode, progName, file string
	dataset, edges, gen  string
	graphFormat, repr    string
	saveGraph            string
	directed             bool
	seed                 int64
	workers              int
	queue, hash, combine bool
	epsilon              float64
	show                 string
	top                  int
	trace                bool
	timeout              time.Duration
	ckptDir              string
	ckptEvery            int
	ckptIncremental      bool
	resume               string
	mutations            string
	warmStart            string
	params               paramFlags
}

func loadGraph(dataset, edges string, directed bool, gen string, seed int64, format, repr string) (*graph.Graph, error) {
	var sources []string
	if dataset != "" {
		sources = append(sources, "-dataset")
	}
	if edges != "" {
		sources = append(sources, "-edges")
	}
	if gen != "" {
		sources = append(sources, "-gen")
	}
	switch len(sources) {
	case 0:
		return nil, fmt.Errorf("need one of -dataset, -edges, -gen")
	case 1:
		// fall through to the single selected source below
	default:
		return nil, fmt.Errorf("conflicting graph sources: %s — pick exactly one", strings.Join(sources, " and "))
	}
	var g *graph.Graph
	switch {
	case dataset != "":
		d, err := graph.DatasetByName(dataset)
		if err != nil {
			return nil, err
		}
		g = d.Build()
	case edges != "":
		dvg, err := isDVGRAF(format, edges)
		if err != nil {
			return nil, err
		}
		if dvg {
			// The DVGRAF loader builds the requested representation
			// directly — flat never exists as an intermediate for compact
			// loads, and mmap never touches the heap.
			mode, err := loadModeOf(repr)
			if err != nil {
				return nil, err
			}
			return graph.ReadGraphFile(edges, mode)
		}
		f, err := os.Open(edges)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		g, err = graph.ReadEdgeList(f, directed)
		if err != nil {
			return nil, err
		}
	default:
		var err error
		g, err = generate(gen, directed, seed)
		if err != nil {
			return nil, err
		}
	}
	switch repr {
	case "", "flat":
		return g, nil
	case "compact":
		return graph.Compact(g)
	case "mmap":
		return nil, fmt.Errorf("-repr mmap needs a DVGRAF -edges file (make one with -save-graph)")
	}
	return nil, fmt.Errorf("unknown representation %q (want flat, compact or mmap)", repr)
}

// isDVGRAF decides whether the -edges file holds a binary DVGRAF graph,
// honouring an explicit -graph-format and sniffing the magic for auto.
func isDVGRAF(format, path string) (bool, error) {
	switch format {
	case "", "auto":
		return graph.IsGraphFile(path), nil
	case "el":
		return false, nil
	case "dvg":
		return true, nil
	}
	return false, fmt.Errorf("unknown -graph-format %q (want auto, el or dvg)", format)
}

func loadModeOf(repr string) (graph.LoadMode, error) {
	switch repr {
	case "", "flat":
		return graph.LoadFlat, nil
	case "compact":
		return graph.LoadCompact, nil
	case "mmap":
		return graph.LoadMmap, nil
	}
	return 0, fmt.Errorf("unknown representation %q (want flat, compact or mmap)", repr)
}

func generate(spec string, directed bool, seed int64) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	atoi := func(i int) int {
		if i >= len(parts) {
			return 0
		}
		v, _ := strconv.Atoi(parts[i])
		return v
	}
	switch parts[0] {
	case "rmat":
		return graph.RMAT(atoi(1), atoi(2), 0.57, 0.19, 0.19, directed, seed), nil
	case "ba":
		return graph.PreferentialAttachment(atoi(1), atoi(2), seed), nil
	case "er":
		return graph.ErdosRenyi(atoi(1), atoi(2), directed, seed), nil
	case "grid":
		return graph.Grid(atoi(1), atoi(2), 10, seed), nil
	case "ws":
		beta := 0.1
		if len(parts) > 3 {
			if b, err := strconv.ParseFloat(parts[3], 64); err == nil {
				beta = b
			}
		}
		return graph.WattsStrogatz(atoi(1), atoi(2), beta, seed), nil
	}
	return nil, fmt.Errorf("unknown generator %q", parts[0])
}

func run(ctx context.Context, cfg runConfig) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	var src string
	switch {
	case cfg.progName != "":
		s, err := programs.Source(cfg.progName)
		if err != nil {
			return err
		}
		src = s
	case cfg.file != "":
		b, err := os.ReadFile(cfg.file)
		if err != nil {
			return err
		}
		src = string(b)
	case cfg.saveGraph != "":
		// Conversion-only invocation: load the graph, save it as DVGRAF,
		// run nothing.
	default:
		return fmt.Errorf("need -program or -file")
	}

	var mode core.Mode
	switch cfg.mode {
	case "dv":
		mode = core.Incremental
	case "dvstar":
		mode = core.Baseline
	case "memotable":
		mode = core.MemoTable
	default:
		return fmt.Errorf("unknown mode %q", cfg.mode)
	}

	if cfg.warmStart != "" && cfg.mutations == "" {
		return fmt.Errorf("-warm-start needs -mutations: a warm restart repairs the effect of a mutation log")
	}
	if cfg.warmStart != "" && cfg.resume != "" {
		return fmt.Errorf("-warm-start and -resume are mutually exclusive")
	}

	g, err := loadGraph(cfg.dataset, cfg.edges, cfg.directed, cfg.gen, cfg.seed, cfg.graphFormat, cfg.repr)
	if err != nil {
		return err
	}
	defer g.Close()
	// The memory line of record: resident adjacency bytes in the chosen
	// representation, printed before anything else can inflate them.
	fmt.Printf("graph: n=%d arcs=%d repr=%s bytes=%d\n",
		g.NumVertices(), g.NumArcs(), g.Repr(), g.ArcBytes())
	if cfg.saveGraph != "" {
		if err := graph.WriteGraphFile(cfg.saveGraph, g); err != nil {
			return err
		}
		fmt.Printf("saved: %s\n", cfg.saveGraph)
		if src == "" {
			return nil
		}
	}
	var applied *graph.AppliedDelta
	if cfg.mutations != "" {
		d, err := graph.ReadDeltaLogFile(cfg.mutations)
		if err != nil {
			return err
		}
		g, applied, err = graph.ApplyDelta(g, d)
		if err != nil {
			return err
		}
	}
	prog, err := core.Compile(src, core.Options{Mode: mode, Epsilon: cfg.epsilon})
	if err != nil {
		return err
	}

	sched := pregel.ScanAll
	if cfg.queue {
		sched = pregel.WorkQueue
	}
	part := pregel.PartitionBlock
	if cfg.hash {
		part = pregel.PartitionHash
	}

	if cfg.ckptEvery > 0 && cfg.ckptDir == "" {
		return fmt.Errorf("-checkpoint-every needs -checkpoint-dir")
	}
	if cfg.ckptIncremental && cfg.ckptDir == "" {
		return fmt.Errorf("-checkpoint-incremental needs -checkpoint-dir")
	}
	var ckpt pregel.CheckpointOptions
	if cfg.ckptDir != "" {
		if err := os.MkdirAll(cfg.ckptDir, 0o755); err != nil {
			return err
		}
		ckpt = pregel.CheckpointOptions{Every: cfg.ckptEvery, Dir: cfg.ckptDir, Incremental: cfg.ckptIncremental}
	}
	var resumeSnap *pregel.Snapshot
	if cfg.resume != "" {
		if pregel.IsChainDir(cfg.resume) {
			st, err := pregel.LoadChain(cfg.resume)
			if err != nil {
				return err
			}
			// A chain written by dvserve also carries mutation logs; replay
			// them so the tip snapshot meets the graph it was taken on.
			for i, payload := range st.GraphDeltas {
				d, err := graph.ReadDeltaLog(bytes.NewReader(payload))
				if err != nil {
					return fmt.Errorf("chain mutation log %d: %w", i, err)
				}
				g, _, err = graph.ApplyDelta(g, d)
				if err != nil {
					return fmt.Errorf("replaying chain mutation log %d: %w", i, err)
				}
			}
			resumeSnap = st.Snapshot
			fmt.Printf("resume: chain %s (superstep %d, %d records, %d mutation logs)\n",
				cfg.resume, st.Snapshot.Superstep, len(st.Entries), len(st.GraphDeltas))
		} else {
			resumeSnap, err = pregel.ReadSnapshotFile(cfg.resume)
			if err != nil {
				return err
			}
		}
	}

	runOpts := vm.RunOptions{
		Params:     cfg.params,
		Workers:    cfg.workers,
		Scheduler:  sched,
		Partition:  part,
		Combine:    cfg.combine,
		Checkpoint: ckpt,
		Resume:     resumeSnap,
	}
	var res *vm.Result
	var runErr error
	if cfg.warmStart != "" {
		// Fail fast at the CLI boundary when the mutation log grew the
		// vertex set and the program cannot repair growth in place (its
		// init{} bakes in the graph size, say) — the size mismatch would
		// otherwise surface as a confusing decode error deep inside the
		// warm restore. Repairable programs proceed: the new vertices are
		// initialized and primed by the delta run itself.
		if applied != nil && applied.NewVertices > 0 {
			if cv := prog.Repairability().Verdict(core.DeltaVertexAdd); cv.Cap != core.Repairable {
				return fmt.Errorf("%w: -mutations added %d vertices but %s; drop -warm-start to rerun from scratch",
					pregel.ErrSnapshotMismatch, applied.NewVertices, cv.Reason)
			}
		}
		snap, err := pregel.ReadSnapshotFile(cfg.warmStart)
		if err != nil {
			return err
		}
		res, runErr = vm.RunDeltaContext(ctx, prog, g, vm.DeltaRunOptions{
			RunOptions: runOpts,
			Snapshot:   snap,
			Changes:    applied,
		})
	} else {
		res, runErr = vm.RunContext(ctx, prog, g, runOpts)
	}
	if res == nil {
		return runErr
	}

	fmt.Printf("graph:        %s\n", g)
	if applied != nil {
		start := "from scratch"
		if cfg.warmStart != "" {
			start = "delta-recompute from " + cfg.warmStart
		}
		fmt.Printf("mutations:    %d arc changes, %d new vertices (%s)\n",
			len(applied.Arcs), applied.NewVertices, start)
	}
	fmt.Printf("mode:         %s (state %d bytes/vertex)\n", mode, prog.Layout.ByteSize())
	fmt.Printf("supersteps:   %d\n", res.Stats.Supersteps)
	fmt.Printf("iterations:   %v\n", res.Iterations)
	fmt.Printf("messages:     %d sent, %d delivered after combining (%d cross-worker)\n",
		res.Stats.MessagesSent, res.Stats.CombinedMessages, res.Stats.CrossWorker)
	fmt.Printf("bytes:        %d\n", res.Stats.MessageBytes)
	fmt.Printf("active total: %d vertex executions\n", res.Stats.TotalActive)
	fmt.Printf("wall time:    %v\n", res.Stats.Duration)
	if res.Stats.Aborted {
		fmt.Printf("aborted:      %s\n", res.Stats.AbortReason)
	}
	if res.Stats.CheckpointPath != "" {
		fmt.Printf("checkpoint:   %s (superstep %d)\n", res.Stats.CheckpointPath, res.Stats.CheckpointSuperstep)
	}
	if res.NonMonotoneSends > 0 {
		fmt.Printf("WARNING: %d non-monotone Δ-messages (min/max accumulators may be stale)\n", res.NonMonotoneSends)
	}
	if cfg.trace {
		fmt.Println("superstep  active     sent       delivered  cross      time")
		for _, st := range res.Stats.Steps {
			fmt.Printf("%-10d %-10d %-10d %-10d %-10d %v\n",
				st.Superstep, st.ActiveVertices, st.MessagesSent, st.CombinedMessages, st.CrossWorker, st.Duration)
		}
	}
	if runErr != nil {
		return runErr
	}

	if cfg.show != "" {
		show, top := cfg.show, cfg.top
		vals, err := res.FieldVector(show)
		if err != nil {
			return err
		}
		type pair struct {
			u uint32
			v float64
		}
		pairs := make([]pair, len(vals))
		for u, v := range vals {
			pairs[u] = pair{uint32(u), v}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].v > pairs[j].v })
		if top > len(pairs) {
			top = len(pairs)
		}
		fmt.Printf("top %d by %s:\n", top, show)
		for _, p := range pairs[:top] {
			fmt.Printf("  vertex %-8d %g\n", p.u, p.v)
		}
	}
	return nil
}
