// Command dvrun compiles a ΔV program and executes it on a graph,
// reporting run statistics and (optionally) result values.
//
// Usage:
//
//	dvrun [-mode dv|dvstar|memotable] (-program name | -file prog.dv)
//	      (-dataset name | -edges file.el [-directed] | -gen spec)
//	      [-param k=v]... [-workers N] [-queue] [-combine] [-epsilon e]
//	      [-show field] [-top N]
//
// Generator specs: rmat:scale:edgefactor, ba:n:k, er:n:m, grid:rows:cols,
// ws:n:k:beta (Watts–Strogatz small world).
// Examples:
//
//	dvrun -program pagerank -dataset wikipedia-s
//	dvrun -program sssp -gen grid:50:50 -param src=0 -show dist -top 5
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/deltav/vm"
	"repro/internal/graph"
	"repro/internal/pregel"
	"repro/internal/programs"
)

type paramFlags map[string]float64

func (p paramFlags) String() string { return fmt.Sprint(map[string]float64(p)) }

func (p paramFlags) Set(s string) error {
	k, v, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=value, got %q", s)
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return err
	}
	p[k] = f
	return nil
}

func main() {
	var (
		mode     = flag.String("mode", "dv", "compile mode: dv, dvstar, memotable")
		progName = flag.String("program", "", "embedded program name")
		file     = flag.String("file", "", "ΔV source file")
		dataset  = flag.String("dataset", "", "stand-in dataset name")
		edges    = flag.String("edges", "", "edge-list file")
		directed = flag.Bool("directed", true, "treat -edges input as directed")
		gen      = flag.String("gen", "", "generator spec (rmat:scale:ef, ba:n:k, er:n:m, grid:r:c)")
		seed     = flag.Int64("seed", 1, "generator seed")
		workers  = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		queue    = flag.Bool("queue", false, "use the work-queue (halt-by-default) scheduler")
		hash     = flag.Bool("hash", false, "use hash (v mod W) vertex placement instead of blocks")
		combine  = flag.Bool("combine", true, "enable message combiners")
		trace    = flag.Bool("trace", false, "print per-superstep statistics")
		epsilon  = flag.Float64("epsilon", 0, "allowable-slop ε (§9)")
		show     = flag.String("show", "", "print this field's values")
		top      = flag.Int("top", 10, "how many values to print with -show")
		params   = paramFlags{}
	)
	flag.Var(params, "param", "program parameter override, name=value (repeatable)")
	flag.Parse()

	cfg := runConfig{
		mode: *mode, progName: *progName, file: *file,
		dataset: *dataset, edges: *edges, directed: *directed, gen: *gen, seed: *seed,
		workers: *workers, queue: *queue, hash: *hash, combine: *combine,
		epsilon: *epsilon, show: *show, top: *top, trace: *trace, params: params,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "dvrun:", err)
		os.Exit(1)
	}
}

type runConfig struct {
	mode, progName, file string
	dataset, edges, gen  string
	directed             bool
	seed                 int64
	workers              int
	queue, hash, combine bool
	epsilon              float64
	show                 string
	top                  int
	trace                bool
	params               paramFlags
}

func loadGraph(dataset, edges string, directed bool, gen string, seed int64) (*graph.Graph, error) {
	switch {
	case dataset != "":
		d, err := graph.DatasetByName(dataset)
		if err != nil {
			return nil, err
		}
		return d.Build(), nil
	case edges != "":
		f, err := os.Open(edges)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return graph.ReadEdgeList(f, directed)
	case gen != "":
		return generate(gen, directed, seed)
	}
	return nil, fmt.Errorf("need one of -dataset, -edges, -gen")
}

func generate(spec string, directed bool, seed int64) (*graph.Graph, error) {
	parts := strings.Split(spec, ":")
	atoi := func(i int) int {
		if i >= len(parts) {
			return 0
		}
		v, _ := strconv.Atoi(parts[i])
		return v
	}
	switch parts[0] {
	case "rmat":
		return graph.RMAT(atoi(1), atoi(2), 0.57, 0.19, 0.19, directed, seed), nil
	case "ba":
		return graph.PreferentialAttachment(atoi(1), atoi(2), seed), nil
	case "er":
		return graph.ErdosRenyi(atoi(1), atoi(2), directed, seed), nil
	case "grid":
		return graph.Grid(atoi(1), atoi(2), 10, seed), nil
	case "ws":
		beta := 0.1
		if len(parts) > 3 {
			if b, err := strconv.ParseFloat(parts[3], 64); err == nil {
				beta = b
			}
		}
		return graph.WattsStrogatz(atoi(1), atoi(2), beta, seed), nil
	}
	return nil, fmt.Errorf("unknown generator %q", parts[0])
}

func run(cfg runConfig) error {
	var src string
	switch {
	case cfg.progName != "":
		s, err := programs.Source(cfg.progName)
		if err != nil {
			return err
		}
		src = s
	case cfg.file != "":
		b, err := os.ReadFile(cfg.file)
		if err != nil {
			return err
		}
		src = string(b)
	default:
		return fmt.Errorf("need -program or -file")
	}

	var mode core.Mode
	switch cfg.mode {
	case "dv":
		mode = core.Incremental
	case "dvstar":
		mode = core.Baseline
	case "memotable":
		mode = core.MemoTable
	default:
		return fmt.Errorf("unknown mode %q", cfg.mode)
	}

	g, err := loadGraph(cfg.dataset, cfg.edges, cfg.directed, cfg.gen, cfg.seed)
	if err != nil {
		return err
	}
	prog, err := core.Compile(src, core.Options{Mode: mode, Epsilon: cfg.epsilon})
	if err != nil {
		return err
	}

	sched := pregel.ScanAll
	if cfg.queue {
		sched = pregel.WorkQueue
	}
	part := pregel.PartitionBlock
	if cfg.hash {
		part = pregel.PartitionHash
	}
	res, err := vm.Run(prog, g, vm.RunOptions{
		Params:    cfg.params,
		Workers:   cfg.workers,
		Scheduler: sched,
		Partition: part,
		Combine:   cfg.combine,
	})
	if err != nil {
		return err
	}

	fmt.Printf("graph:        %s\n", g)
	fmt.Printf("mode:         %s (state %d bytes/vertex)\n", mode, prog.Layout.ByteSize())
	fmt.Printf("supersteps:   %d\n", res.Stats.Supersteps)
	fmt.Printf("iterations:   %v\n", res.Iterations)
	fmt.Printf("messages:     %d sent, %d delivered after combining (%d cross-worker)\n",
		res.Stats.MessagesSent, res.Stats.CombinedMessages, res.Stats.CrossWorker)
	fmt.Printf("bytes:        %d\n", res.Stats.MessageBytes)
	fmt.Printf("active total: %d vertex executions\n", res.Stats.TotalActive)
	fmt.Printf("wall time:    %v\n", res.Stats.Duration)
	if res.NonMonotoneSends > 0 {
		fmt.Printf("WARNING: %d non-monotone Δ-messages (min/max accumulators may be stale)\n", res.NonMonotoneSends)
	}
	if cfg.trace {
		fmt.Println("superstep  active     sent       delivered  cross      time")
		for _, st := range res.Stats.Steps {
			fmt.Printf("%-10d %-10d %-10d %-10d %-10d %v\n",
				st.Superstep, st.ActiveVertices, st.MessagesSent, st.CombinedMessages, st.CrossWorker, st.Duration)
		}
	}

	if cfg.show != "" {
		show, top := cfg.show, cfg.top
		vals := res.FieldVector(show)
		type pair struct {
			u uint32
			v float64
		}
		pairs := make([]pair, len(vals))
		for u, v := range vals {
			pairs[u] = pair{uint32(u), v}
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].v > pairs[j].v })
		if top > len(pairs) {
			top = len(pairs)
		}
		fmt.Printf("top %d by %s:\n", top, show)
		for _, p := range pairs[:top] {
			fmt.Printf("  vertex %-8d %g\n", p.u, p.v)
		}
	}
	return nil
}
