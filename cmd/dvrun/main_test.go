package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/pregel"
)

func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	if errRun != nil {
		t.Fatalf("run: %v", errRun)
	}
	return string(buf[:n])
}

func TestRunSSSPOnGrid(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), runConfig{
			mode: "dv", progName: "sssp", gen: "grid:10:10", seed: 1,
			workers: 2, combine: true, show: "dist", top: 3, trace: true,
			params: paramFlags{"src": 0},
		})
	})
	for _, want := range []string{"graph:", "supersteps:", "top 3 by dist", "superstep  active"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunModesAndPlacement(t *testing.T) {
	for _, mode := range []string{"dv", "dvstar", "memotable"} {
		out := capture(t, func() error {
			return run(context.Background(), runConfig{
				mode: mode, progName: "pagerank", gen: "rmat:7:4", seed: 2,
				workers: 3, hash: true, queue: true, combine: true,
				params: paramFlags{},
			})
		})
		if !strings.Contains(out, "messages:") {
			t.Fatalf("mode %s output missing stats:\n%s", mode, out)
		}
	}
}

func TestRunFromEdgeListFile(t *testing.T) {
	g := graph.Path(6, true)
	f := filepath.Join(t.TempDir(), "g.el")
	fh, err := os.Create(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(fh, g); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	out := capture(t, func() error {
		return run(context.Background(), runConfig{
			mode: "dv", progName: "bfs", edges: f, directed: true,
			combine: true, params: paramFlags{"src": 0}, show: "hop", top: 6,
		})
	})
	if !strings.Contains(out, "top 6 by hop") {
		t.Fatalf("edge-list run output:\n%s", out)
	}
}

func TestRunProgramFile(t *testing.T) {
	f := filepath.Join(t.TempDir(), "p.dv")
	src := "init { local x : float = 1.0 * id };\niter k { let m : float = max [ u.x | u <- #in ] in x = max x m } until { fixpoint }\n"
	if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() error {
		return run(context.Background(), runConfig{mode: "dv", file: f, gen: "er:50:150", seed: 3, combine: true, params: paramFlags{}})
	})
	if !strings.Contains(out, "wall time:") {
		t.Fatalf("program file run output:\n%s", out)
	}
}

func TestRunErrorPaths(t *testing.T) {
	bad := []runConfig{
		{mode: "dv", params: paramFlags{}},                                                  // no program
		{mode: "bogus", progName: "sssp", gen: "grid:3:3", params: paramFlags{}},            // bad mode
		{mode: "dv", progName: "sssp", params: paramFlags{}},                                // no graph
		{mode: "dv", progName: "sssp", gen: "bogus:1", params: paramFlags{}},                // bad generator
		{mode: "dv", progName: "nope", gen: "grid:3:3", params: paramFlags{}},               // unknown program
		{mode: "dv", progName: "cc", gen: "rmat:4:2", directed: true, params: paramFlags{}}, // #neighbors on directed
		{mode: "dv", progName: "sssp", gen: "grid:3:3", params: paramFlags{"q": 1}},         // unknown param
		{mode: "dv", progName: "sssp", edges: "/nonexistent", params: paramFlags{}},         // missing file
		{mode: "dv", file: "/nonexistent.dv", gen: "grid:3:3", params: paramFlags{}},
	}
	for i, cfg := range bad {
		if err := run(context.Background(), cfg); err == nil {
			t.Fatalf("case %d: run succeeded, want error", i)
		}
	}
}

func TestParamFlagParsing(t *testing.T) {
	p := paramFlags{}
	if err := p.Set("src=5"); err != nil || p["src"] != 5 {
		t.Fatalf("Set(src=5): %v %v", err, p)
	}
	if err := p.Set("bogus"); err == nil {
		t.Fatal("Set without '=' should fail")
	}
	if err := p.Set("x=abc"); err == nil {
		t.Fatal("Set with non-numeric value should fail")
	}
	if p.String() == "" {
		t.Fatal("String empty")
	}
}

// captureErr is capture for runs expected to fail: it returns both the
// stdout produced before the failure and the error.
func captureErr(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), errRun
}

func TestLoadGraphConflictingSources(t *testing.T) {
	cases := []struct {
		dataset, edges, gen string
		wantNames           []string
	}{
		{"wikipedia-s", "g.el", "", []string{"-dataset", "-edges"}},
		{"wikipedia-s", "", "grid:3:3", []string{"-dataset", "-gen"}},
		{"", "g.el", "grid:3:3", []string{"-edges", "-gen"}},
		{"wikipedia-s", "g.el", "grid:3:3", []string{"-dataset", "-edges", "-gen"}},
	}
	for _, c := range cases {
		_, err := loadGraph(c.dataset, c.edges, true, c.gen, 1, "auto", "flat")
		if err == nil {
			t.Fatalf("loadGraph(%q, %q, %q) succeeded, want conflict error", c.dataset, c.edges, c.gen)
		}
		for _, name := range c.wantNames {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("conflict error %q does not name %s", err, name)
			}
		}
	}
	// A single source must still work (and none must still say so).
	if _, err := loadGraph("", "", true, "grid:3:3", 1, "auto", "flat"); err != nil {
		t.Fatalf("single -gen source: %v", err)
	}
	if _, err := loadGraph("", "", true, "", 1, "auto", "flat"); err == nil || !strings.Contains(err.Error(), "need one of") {
		t.Fatalf("no source error = %v", err)
	}
}

// TestDocCommentListsAllFlags guards against doc drift: every flag
// registered by registerFlags must be mentioned as "-name" in this file's
// package doc comment (the Usage block), and vice versa nothing forces the
// doc to shrink — new flags must be documented as they are added.
func TestDocCommentListsAllFlags(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	// The doc comment is everything before the package clause.
	doc, _, ok := strings.Cut(string(src), "\npackage main")
	if !ok {
		t.Fatal("cannot locate package clause in main.go")
	}
	fs := flag.NewFlagSet("dvrun", flag.ContinueOnError)
	registerFlags(fs)
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(doc, "-"+f.Name) {
			t.Errorf("flag -%s is registered but missing from the doc comment Usage block", f.Name)
		}
	})
}

// TestGenHelpMentionsWattsStrogatz pins the -gen usage string to the full
// generator set, ws:n:k:beta included.
func TestGenHelpMentionsWattsStrogatz(t *testing.T) {
	fs := flag.NewFlagSet("dvrun", flag.ContinueOnError)
	registerFlags(fs)
	f := fs.Lookup("gen")
	if f == nil {
		t.Fatal("no -gen flag registered")
	}
	for _, spec := range []string{"rmat:", "ba:", "er:", "grid:", "ws:n:k:beta"} {
		if !strings.Contains(f.Usage, spec) {
			t.Errorf("-gen help %q missing generator %q", f.Usage, spec)
		}
	}
}

func TestRegisterFlagsConfigRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("dvrun", flag.ContinueOnError)
	vals := registerFlags(fs)
	if err := fs.Parse([]string{
		"-mode", "dvstar", "-program", "pagerank", "-gen", "rmat:5:4",
		"-timeout", "250ms", "-param", "src=3", "-queue", "-trace",
		"-checkpoint-dir", "/tmp/ck", "-checkpoint-every", "4", "-resume", "snap.dvsnap",
	}); err != nil {
		t.Fatal(err)
	}
	cfg := vals.config()
	if cfg.mode != "dvstar" || cfg.progName != "pagerank" || cfg.gen != "rmat:5:4" {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.timeout != 250*time.Millisecond || !cfg.queue || !cfg.trace {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.ckptDir != "/tmp/ck" || cfg.ckptEvery != 4 || cfg.resume != "snap.dvsnap" {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.params["src"] != 3 {
		t.Fatalf("params = %v", cfg.params)
	}
}

// TestRunTimeoutPartialStats exercises the CLI abort path: a tiny -timeout
// on a large generated graph must fail with a deadline error yet still
// print the per-run statistics accumulated so far, marked aborted.
func TestRunTimeoutPartialStats(t *testing.T) {
	out, err := captureErr(t, func() error {
		return run(context.Background(), runConfig{
			mode: "dv", progName: "pagerank", gen: "rmat:15:16", seed: 4,
			workers: 2, combine: true, trace: true, timeout: time.Millisecond,
			params: paramFlags{},
		})
	})
	if err == nil {
		t.Fatal("run with 1ms timeout succeeded, want abort")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
	for _, want := range []string{"supersteps:", "wall time:", "aborted:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("partial stats output missing %q:\n%s", want, out)
		}
	}
}

// TestRunCancelledContext checks that an already-cancelled context aborts
// promptly and surfaces context.Canceled.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := captureErr(t, func() error {
		return run(ctx, runConfig{
			mode: "dv", progName: "pagerank", gen: "grid:10:10", seed: 1,
			combine: true, params: paramFlags{},
		})
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
}

// TestRunPanicSurfacesRunError ensures a panic inside the engine comes
// back to the CLI as a structured *pregel.RunError rather than crashing.
func TestRunPanicSurfacesRunError(t *testing.T) {
	// FieldVector with an unknown field errors cleanly (API-boundary check
	// that panics were converted to errors).
	err := run(context.Background(), runConfig{
		mode: "dv", progName: "pagerank", gen: "grid:5:5", seed: 1,
		combine: true, show: "nosuchfield", params: paramFlags{},
	})
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("err = %v, want unknown-field error", err)
	}
	var re *pregel.RunError
	if errors.As(err, &re) {
		t.Fatalf("unknown-field error should not be a RunError: %v", err)
	}
}

// --- checkpoint / resume ---------------------------------------------------

// superstepsOf extracts the "supersteps: N" stat from dvrun output.
func superstepsOf(t *testing.T, out string) int {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "supersteps:"); ok {
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				t.Fatalf("bad supersteps line %q: %v", line, err)
			}
			return n
		}
	}
	t.Fatalf("no supersteps line in output:\n%s", out)
	return 0
}

// checkpointPathFrom extracts the path from the "checkpoint: path
// (superstep N)" line, or "".
func checkpointPathFrom(out string) string {
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "checkpoint:"); ok {
			p, _, _ := strings.Cut(strings.TrimSpace(rest), " (")
			return p
		}
	}
	return ""
}

// topBlock extracts the "top N by field:" block (the printed result values).
func topBlock(t *testing.T, out string) string {
	t.Helper()
	_, block, ok := strings.Cut(out, "top ")
	if !ok {
		t.Fatalf("no top-values block in output:\n%s", out)
	}
	return block
}

// TestRunCheckpointResumeDeterministic drives the CLI resume path without
// relying on interrupt timing: a full run snapshots every barrier, then a
// second invocation resumes from a mid-run snapshot file and must reproduce
// the same final values in exactly the remaining supersteps.
func TestRunCheckpointResumeDeterministic(t *testing.T) {
	dir := t.TempDir()
	base := runConfig{
		mode: "dv", progName: "pagerank", gen: "rmat:8:6", seed: 5,
		workers: 2, combine: true, show: "vl", top: 5, params: paramFlags{},
	}
	full := base
	full.ckptDir = dir
	full.ckptEvery = 1
	fullOut := capture(t, func() error { return run(context.Background(), full) })
	S := superstepsOf(t, fullOut)
	if S < 3 {
		t.Fatalf("full run too short to resume from the middle: %d supersteps", S)
	}
	if p := checkpointPathFrom(fullOut); !strings.HasPrefix(p, dir) {
		t.Fatalf("checkpoint line %q does not point into -checkpoint-dir %q", p, dir)
	}
	if !strings.Contains(fullOut, "(superstep ") {
		t.Fatalf("checkpoint line lacks the superstep annotation:\n%s", fullOut)
	}
	wantTop := topBlock(t, fullOut)

	k := S / 2 // resume from the snapshot taken after superstep k
	res := base
	res.resume = filepath.Join(dir, pregel.SnapshotFileName(k))
	out := capture(t, func() error { return run(context.Background(), res) })
	if got, want := superstepsOf(t, out), S-(k+1); got != want {
		t.Errorf("resumed run took %d supersteps, want %d", got, want)
	}
	if got := topBlock(t, out); got != wantTop {
		t.Errorf("resumed values differ from uninterrupted run:\ngot:\n%swant:\n%s", got, wantTop)
	}
}

// TestRunInterruptResume is the end-to-end crash story: a long run is
// cancelled mid-flight (as SIGINT would via signal.NotifyContext), the CLI
// fails but prints the abort snapshot's path, and resuming from that path
// completes the computation with values identical to an uninterrupted run.
func TestRunInterruptResume(t *testing.T) {
	base := runConfig{
		mode: "dv", progName: "pagerank", gen: "rmat:13:8", seed: 6,
		workers: 2, combine: true, show: "vl", top: 5, params: paramFlags{},
	}
	fullOut := capture(t, func() error { return run(context.Background(), base) })
	S := superstepsOf(t, fullOut)
	wantTop := topBlock(t, fullOut)

	// Interrupt timing is inherently racy: too early and no barrier has
	// completed (nothing to snapshot), too late and the run finishes. Retry
	// with growing timeouts until an aborted run leaves a checkpoint.
	var snapPath string
	for timeout := 2 * time.Millisecond; timeout < 4*time.Second; timeout *= 2 {
		cfg := base
		cfg.ckptDir = t.TempDir()
		cfg.timeout = timeout
		out, err := captureErr(t, func() error { return run(context.Background(), cfg) })
		if err == nil {
			t.Skipf("run finished within %v; machine too fast to interrupt", timeout)
		}
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
		}
		if p := checkpointPathFrom(out); p != "" {
			if !strings.Contains(out, "aborted:") {
				t.Fatalf("interrupted output has a checkpoint but no aborted line:\n%s", out)
			}
			snapPath = p
			break
		}
	}
	if snapPath == "" {
		t.Fatal("no interrupted run produced a checkpoint")
	}

	var k int
	if _, err := fmt.Sscanf(filepath.Base(snapPath), "snap-%d.dvsnap", &k); err != nil {
		t.Fatalf("cannot parse superstep from %q: %v", snapPath, err)
	}
	res := base
	res.resume = snapPath
	out := capture(t, func() error { return run(context.Background(), res) })
	if got, want := superstepsOf(t, out), S-(k+1); got != want {
		t.Errorf("resumed run took %d supersteps, want %d (snapshot at superstep %d of %d)", got, want, k, S)
	}
	if got := topBlock(t, out); got != wantTop {
		t.Errorf("resumed values differ from uninterrupted run:\ngot:\n%swant:\n%s", got, wantTop)
	}
}

// --- streaming mutations / warm start ---------------------------------------

// TestRunWarmStartDeltaRecompute is the CLI end of the streaming-mutation
// story: converge once with a terminal checkpoint, apply a mutation log,
// and check that -warm-start reproduces the from-scratch values on the
// mutated graph in strictly fewer supersteps.
func TestRunWarmStartDeltaRecompute(t *testing.T) {
	// A directed path is the worst case for a from-scratch SSSP wave and
	// keeps the repair wave local to the shortcut's downstream suffix.
	el := filepath.Join(t.TempDir(), "chain.el")
	fh, err := os.Create(el)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(fh, graph.Path(120, true)); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	dir := t.TempDir()
	base := runConfig{
		mode: "dv", progName: "sssp", edges: el, directed: true,
		workers: 2, combine: true, show: "dist", top: 5,
		params: paramFlags{"src": 0},
	}

	// Seed run on the pre-mutation graph, keeping the terminal snapshot.
	seed := base
	seed.ckptDir = dir
	seedOut := capture(t, func() error { return run(context.Background(), seed) })
	snapPath := checkpointPathFrom(seedOut)
	if snapPath == "" {
		t.Fatalf("seed run printed no checkpoint line:\n%s", seedOut)
	}

	// A small streaming delta: one shortcut, one redundant back-link.
	mut := filepath.Join(t.TempDir(), "edits.dvdelta")
	if err := os.WriteFile(mut, []byte("# streaming edits\nadd 0 90\nadd 50 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	scratch := base
	scratch.mutations = mut
	scratchOut := capture(t, func() error { return run(context.Background(), scratch) })
	if !strings.Contains(scratchOut, "arc changes") || !strings.Contains(scratchOut, "from scratch") {
		t.Fatalf("scratch mutated run missing mutations line:\n%s", scratchOut)
	}

	warm := base
	warm.mutations = mut
	warm.warmStart = snapPath
	warmOut := capture(t, func() error { return run(context.Background(), warm) })
	if !strings.Contains(warmOut, "delta-recompute from "+snapPath) {
		t.Fatalf("warm run missing delta-recompute marker:\n%s", warmOut)
	}
	if got, want := topBlock(t, warmOut), topBlock(t, scratchOut); got != want {
		t.Errorf("warm-start values differ from scratch run on the mutated graph:\ngot:\n%swant:\n%s", got, want)
	}
	if ws, ss := superstepsOf(t, warmOut), superstepsOf(t, scratchOut); ws >= ss {
		t.Errorf("warm start took %d supersteps, scratch %d — expected strictly fewer", ws, ss)
	}
}

// TestRunCheckpointIncrementalResume drives the chain-mode CLI path: a full
// run with -checkpoint-incremental leaves a chain directory (base snapshot
// plus delta records), and a second invocation resuming from the directory
// itself — not any single snapshot file — replays the chain to its terminal
// tip and reproduces the same values with zero supersteps left to execute.
func TestRunCheckpointIncrementalResume(t *testing.T) {
	dir := t.TempDir()
	base := runConfig{
		mode: "dv", progName: "pagerank", gen: "rmat:8:6", seed: 5,
		workers: 2, combine: true, show: "vl", top: 5, params: paramFlags{},
	}
	full := base
	full.ckptDir = dir
	full.ckptEvery = 1
	full.ckptIncremental = true
	fullOut := capture(t, func() error { return run(context.Background(), full) })
	if p := checkpointPathFrom(fullOut); !strings.HasPrefix(p, dir) {
		t.Fatalf("checkpoint line %q does not point into the chain directory %q", p, dir)
	}
	if !pregel.IsChainDir(dir) {
		t.Fatalf("%s holds no chain manifest after an incremental run", dir)
	}
	wantTop := topBlock(t, fullOut)

	res := base
	res.resume = dir
	out := capture(t, func() error { return run(context.Background(), res) })
	if !strings.Contains(out, "resume: chain "+dir) {
		t.Fatalf("chain resume line missing:\n%s", out)
	}
	// The chain tip is the terminal barrier snapshot, so nothing is left to
	// recompute: the replayed state alone must carry the final values.
	if got := superstepsOf(t, out); got != 0 {
		t.Errorf("resume from the chain tip took %d supersteps, want 0", got)
	}
	if got := topBlock(t, out); got != wantTop {
		t.Errorf("chain-resumed values differ from the uninterrupted run:\ngot:\n%swant:\n%s", got, wantTop)
	}

	// Resuming mid-chain still works through the ordinary snapshot path once
	// the chain is replayed externally, but pointing -resume at a random
	// file inside the chain directory must fail decode, not silently load.
	if _, err := captureErr(t, func() error {
		bad := base
		bad.resume = filepath.Join(dir, pregel.ChainManifestName)
		return run(context.Background(), bad)
	}); err == nil {
		t.Fatal("resuming from the raw manifest file succeeded, want decode error")
	}
}

// TestRunWarmStartVertexGrowth: a mutation log that grows the vertex set is
// warm-startable when the program's repairability matrix admits vertex-add
// (sssp does: init{} is local, so the newcomers are initialized and primed
// by the repair superstep). The warm values must match a from-scratch run
// on the grown graph.
func TestRunWarmStartVertexGrowth(t *testing.T) {
	el := filepath.Join(t.TempDir(), "chain.el")
	fh, err := os.Create(el)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(fh, graph.Path(120, true)); err != nil {
		t.Fatal(err)
	}
	fh.Close()

	dir := t.TempDir()
	base := runConfig{
		mode: "dv", progName: "sssp", edges: el, directed: true,
		workers: 2, combine: true, show: "dist", top: 5,
		params: paramFlags{"src": 0},
	}
	seed := base
	seed.ckptDir = dir
	seedOut := capture(t, func() error { return run(context.Background(), seed) })
	snapPath := checkpointPathFrom(seedOut)
	if snapPath == "" {
		t.Fatalf("seed run printed no checkpoint line:\n%s", seedOut)
	}

	// Two new vertices spliced onto the path's tail plus a shortcut.
	mut := filepath.Join(t.TempDir(), "grow.dvdelta")
	log := "addv 2\nadd 119 120\nadd 120 121\nadd 0 121 5\n"
	if err := os.WriteFile(mut, []byte(log), 0o644); err != nil {
		t.Fatal(err)
	}

	scratch := base
	scratch.mutations = mut
	scratchOut := capture(t, func() error { return run(context.Background(), scratch) })
	if !strings.Contains(scratchOut, "2 new vertices") {
		t.Fatalf("scratch run missing the new-vertex count:\n%s", scratchOut)
	}

	warm := base
	warm.mutations = mut
	warm.warmStart = snapPath
	warmOut := capture(t, func() error { return run(context.Background(), warm) })
	if !strings.Contains(warmOut, "delta-recompute from "+snapPath) {
		t.Fatalf("warm run missing delta-recompute marker:\n%s", warmOut)
	}
	if got, want := topBlock(t, warmOut), topBlock(t, scratchOut); got != want {
		t.Errorf("grown warm-start values differ from scratch:\ngot:\n%swant:\n%s", got, want)
	}
	if ws, ss := superstepsOf(t, warmOut), superstepsOf(t, scratchOut); ws >= ss {
		t.Errorf("warm start took %d supersteps, scratch %d — expected strictly fewer", ws, ss)
	}
}

// TestRunWarmStartGrowthRejectedByVerdict: the same growth log must be
// refused at the CLI boundary when the program bakes graphSize into every
// vertex's init{} — the static vertex-add verdict, not a size heuristic,
// is what gates the warm restart.
func TestRunWarmStartGrowthRejectedByVerdict(t *testing.T) {
	src := "init { local share : float = 1.0 / graphSize };\n" +
		"iter k { share = max [ u.share | u <- #in ] } until { fixpoint }\n"
	f := filepath.Join(t.TempDir(), "gsize.dv")
	if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	base := runConfig{
		mode: "dv", file: f, gen: "grid:8:8", seed: 1,
		combine: true, params: paramFlags{},
	}
	dir := t.TempDir()
	seed := base
	seed.ckptDir = dir
	seedOut := capture(t, func() error { return run(context.Background(), seed) })
	snapPath := checkpointPathFrom(seedOut)
	if snapPath == "" {
		t.Fatalf("seed run printed no checkpoint line:\n%s", seedOut)
	}

	mut := filepath.Join(t.TempDir(), "grow.dvdelta")
	if err := os.WriteFile(mut, []byte("addv 1\nadd 0 64\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.mutations = mut
	cfg.warmStart = snapPath
	_, err := captureErr(t, func() error { return run(context.Background(), cfg) })
	if !errors.Is(err, pregel.ErrSnapshotMismatch) || !strings.Contains(err.Error(), "added 1 vertices") {
		t.Fatalf("err = %v, want the vertex-add verdict rejection", err)
	}
}

// TestRunMutationErrorPaths covers the new flag validation and the
// planner's rejection surfacing through the CLI.
func TestRunMutationErrorPaths(t *testing.T) {
	ctx := context.Background()
	base := runConfig{
		mode: "dv", progName: "sssp", gen: "grid:5:5", seed: 1,
		combine: true, params: paramFlags{"src": 0},
	}
	// -warm-start without -mutations.
	cfg := base
	cfg.warmStart = "snap.dvsnap"
	if err := run(ctx, cfg); err == nil || !strings.Contains(err.Error(), "-mutations") {
		t.Fatalf("err = %v, want -mutations requirement", err)
	}
	// -warm-start with -resume.
	cfg = base
	cfg.mutations = "edits.dvdelta"
	cfg.warmStart = "snap.dvsnap"
	cfg.resume = "snap.dvsnap"
	if err := run(ctx, cfg); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v, want mutual-exclusion error", err)
	}
	// Missing mutation log.
	cfg = base
	cfg.mutations = "/nonexistent.dvdelta"
	if err := run(ctx, cfg); err == nil {
		t.Fatal("missing mutation log succeeded")
	}
	// Missing warm-start snapshot.
	mut := filepath.Join(t.TempDir(), "edits.dvdelta")
	if err := os.WriteFile(mut, []byte("add 0 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg = base
	cfg.mutations = mut
	cfg.warmStart = "/nonexistent.dvsnap"
	if err := run(ctx, cfg); err == nil {
		t.Fatal("missing warm-start snapshot succeeded")
	}
	// Removing an edge loosens a min input that sssp's self-clamping
	// body (`dist = min dist d`) could never unwind: the planner must
	// reject it with the rerun-from-scratch diagnostic.
	dir := t.TempDir()
	seed := base
	seed.ckptDir = dir
	seedOut := capture(t, func() error { return run(ctx, seed) })
	snapPath := checkpointPathFrom(seedOut)
	del := filepath.Join(t.TempDir(), "del.dvdelta")
	if err := os.WriteFile(del, []byte("del 0 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg = base
	cfg.mutations = del
	cfg.warmStart = snapPath
	if err := run(ctx, cfg); err == nil || !strings.Contains(err.Error(), "pin the stale fixpoint") {
		t.Fatalf("err = %v, want min-loosening rejection", err)
	}
}

// TestRunCheckpointErrorPaths covers flag validation and resume rejection.
func TestRunCheckpointErrorPaths(t *testing.T) {
	ctx := context.Background()
	// -checkpoint-every without -checkpoint-dir is a flag error.
	err := run(ctx, runConfig{
		mode: "dv", progName: "pagerank", gen: "grid:3:3",
		combine: true, ckptEvery: 2, params: paramFlags{},
	})
	if err == nil || !strings.Contains(err.Error(), "-checkpoint-dir") {
		t.Fatalf("err = %v, want -checkpoint-dir requirement", err)
	}
	// -checkpoint-incremental without -checkpoint-dir likewise.
	err = run(ctx, runConfig{
		mode: "dv", progName: "pagerank", gen: "grid:3:3",
		combine: true, ckptIncremental: true, params: paramFlags{},
	})
	if err == nil || !strings.Contains(err.Error(), "-checkpoint-dir") {
		t.Fatalf("err = %v, want -checkpoint-dir requirement for -checkpoint-incremental", err)
	}
	// -resume with a missing file.
	err = run(ctx, runConfig{
		mode: "dv", progName: "pagerank", gen: "grid:3:3",
		combine: true, resume: "/nonexistent.dvsnap", params: paramFlags{},
	})
	if err == nil {
		t.Fatal("resume from missing file succeeded")
	}
	// -resume against a different graph: fingerprint mismatch.
	dir := t.TempDir()
	_ = capture(t, func() error {
		return run(ctx, runConfig{
			mode: "dv", progName: "pagerank", gen: "grid:5:5", seed: 1,
			combine: true, ckptDir: dir, ckptEvery: 1, params: paramFlags{},
		})
	})
	snaps, err := filepath.Glob(filepath.Join(dir, "snap-*.dvsnap"))
	if err != nil || len(snaps) == 0 {
		t.Fatalf("no snapshots written: %v %v", snaps, err)
	}
	_, err = captureErr(t, func() error {
		return run(ctx, runConfig{
			mode: "dv", progName: "pagerank", gen: "grid:6:6", seed: 1,
			combine: true, resume: snaps[0], params: paramFlags{},
		})
	})
	if !errors.Is(err, pregel.ErrSnapshotMismatch) {
		t.Fatalf("err = %v, want ErrSnapshotMismatch", err)
	}
}
