package main

import (
	"context"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/pregel"
)

func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	if errRun != nil {
		t.Fatalf("run: %v", errRun)
	}
	return string(buf[:n])
}

func TestRunSSSPOnGrid(t *testing.T) {
	out := capture(t, func() error {
		return run(context.Background(), runConfig{
			mode: "dv", progName: "sssp", gen: "grid:10:10", seed: 1,
			workers: 2, combine: true, show: "dist", top: 3, trace: true,
			params: paramFlags{"src": 0},
		})
	})
	for _, want := range []string{"graph:", "supersteps:", "top 3 by dist", "superstep  active"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunModesAndPlacement(t *testing.T) {
	for _, mode := range []string{"dv", "dvstar", "memotable"} {
		out := capture(t, func() error {
			return run(context.Background(), runConfig{
				mode: mode, progName: "pagerank", gen: "rmat:7:4", seed: 2,
				workers: 3, hash: true, queue: true, combine: true,
				params: paramFlags{},
			})
		})
		if !strings.Contains(out, "messages:") {
			t.Fatalf("mode %s output missing stats:\n%s", mode, out)
		}
	}
}

func TestRunFromEdgeListFile(t *testing.T) {
	g := graph.Path(6, true)
	f := filepath.Join(t.TempDir(), "g.el")
	fh, err := os.Create(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(fh, g); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	out := capture(t, func() error {
		return run(context.Background(), runConfig{
			mode: "dv", progName: "bfs", edges: f, directed: true,
			combine: true, params: paramFlags{"src": 0}, show: "hop", top: 6,
		})
	})
	if !strings.Contains(out, "top 6 by hop") {
		t.Fatalf("edge-list run output:\n%s", out)
	}
}

func TestRunProgramFile(t *testing.T) {
	f := filepath.Join(t.TempDir(), "p.dv")
	src := "init { local x : float = 1.0 * id };\niter k { let m : float = max [ u.x | u <- #in ] in x = max x m } until { fixpoint }\n"
	if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() error {
		return run(context.Background(), runConfig{mode: "dv", file: f, gen: "er:50:150", seed: 3, combine: true, params: paramFlags{}})
	})
	if !strings.Contains(out, "wall time:") {
		t.Fatalf("program file run output:\n%s", out)
	}
}

func TestRunErrorPaths(t *testing.T) {
	bad := []runConfig{
		{mode: "dv", params: paramFlags{}},                                                  // no program
		{mode: "bogus", progName: "sssp", gen: "grid:3:3", params: paramFlags{}},            // bad mode
		{mode: "dv", progName: "sssp", params: paramFlags{}},                                // no graph
		{mode: "dv", progName: "sssp", gen: "bogus:1", params: paramFlags{}},                // bad generator
		{mode: "dv", progName: "nope", gen: "grid:3:3", params: paramFlags{}},               // unknown program
		{mode: "dv", progName: "cc", gen: "rmat:4:2", directed: true, params: paramFlags{}}, // #neighbors on directed
		{mode: "dv", progName: "sssp", gen: "grid:3:3", params: paramFlags{"q": 1}},         // unknown param
		{mode: "dv", progName: "sssp", edges: "/nonexistent", params: paramFlags{}},         // missing file
		{mode: "dv", file: "/nonexistent.dv", gen: "grid:3:3", params: paramFlags{}},
	}
	for i, cfg := range bad {
		if err := run(context.Background(), cfg); err == nil {
			t.Fatalf("case %d: run succeeded, want error", i)
		}
	}
}

func TestParamFlagParsing(t *testing.T) {
	p := paramFlags{}
	if err := p.Set("src=5"); err != nil || p["src"] != 5 {
		t.Fatalf("Set(src=5): %v %v", err, p)
	}
	if err := p.Set("bogus"); err == nil {
		t.Fatal("Set without '=' should fail")
	}
	if err := p.Set("x=abc"); err == nil {
		t.Fatal("Set with non-numeric value should fail")
	}
	if p.String() == "" {
		t.Fatal("String empty")
	}
}

// captureErr is capture for runs expected to fail: it returns both the
// stdout produced before the failure and the error.
func captureErr(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	return string(buf[:n]), errRun
}

func TestLoadGraphConflictingSources(t *testing.T) {
	cases := []struct {
		dataset, edges, gen string
		wantNames           []string
	}{
		{"wikipedia-s", "g.el", "", []string{"-dataset", "-edges"}},
		{"wikipedia-s", "", "grid:3:3", []string{"-dataset", "-gen"}},
		{"", "g.el", "grid:3:3", []string{"-edges", "-gen"}},
		{"wikipedia-s", "g.el", "grid:3:3", []string{"-dataset", "-edges", "-gen"}},
	}
	for _, c := range cases {
		_, err := loadGraph(c.dataset, c.edges, true, c.gen, 1)
		if err == nil {
			t.Fatalf("loadGraph(%q, %q, %q) succeeded, want conflict error", c.dataset, c.edges, c.gen)
		}
		for _, name := range c.wantNames {
			if !strings.Contains(err.Error(), name) {
				t.Fatalf("conflict error %q does not name %s", err, name)
			}
		}
	}
	// A single source must still work (and none must still say so).
	if _, err := loadGraph("", "", true, "grid:3:3", 1); err != nil {
		t.Fatalf("single -gen source: %v", err)
	}
	if _, err := loadGraph("", "", true, "", 1); err == nil || !strings.Contains(err.Error(), "need one of") {
		t.Fatalf("no source error = %v", err)
	}
}

// TestDocCommentListsAllFlags guards against doc drift: every flag
// registered by registerFlags must be mentioned as "-name" in this file's
// package doc comment (the Usage block), and vice versa nothing forces the
// doc to shrink — new flags must be documented as they are added.
func TestDocCommentListsAllFlags(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	// The doc comment is everything before the package clause.
	doc, _, ok := strings.Cut(string(src), "\npackage main")
	if !ok {
		t.Fatal("cannot locate package clause in main.go")
	}
	fs := flag.NewFlagSet("dvrun", flag.ContinueOnError)
	registerFlags(fs)
	fs.VisitAll(func(f *flag.Flag) {
		if !strings.Contains(doc, "-"+f.Name) {
			t.Errorf("flag -%s is registered but missing from the doc comment Usage block", f.Name)
		}
	})
}

// TestGenHelpMentionsWattsStrogatz pins the -gen usage string to the full
// generator set, ws:n:k:beta included.
func TestGenHelpMentionsWattsStrogatz(t *testing.T) {
	fs := flag.NewFlagSet("dvrun", flag.ContinueOnError)
	registerFlags(fs)
	f := fs.Lookup("gen")
	if f == nil {
		t.Fatal("no -gen flag registered")
	}
	for _, spec := range []string{"rmat:", "ba:", "er:", "grid:", "ws:n:k:beta"} {
		if !strings.Contains(f.Usage, spec) {
			t.Errorf("-gen help %q missing generator %q", f.Usage, spec)
		}
	}
}

func TestRegisterFlagsConfigRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("dvrun", flag.ContinueOnError)
	vals := registerFlags(fs)
	if err := fs.Parse([]string{
		"-mode", "dvstar", "-program", "pagerank", "-gen", "rmat:5:4",
		"-timeout", "250ms", "-param", "src=3", "-queue", "-trace",
	}); err != nil {
		t.Fatal(err)
	}
	cfg := vals.config()
	if cfg.mode != "dvstar" || cfg.progName != "pagerank" || cfg.gen != "rmat:5:4" {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.timeout != 250*time.Millisecond || !cfg.queue || !cfg.trace {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.params["src"] != 3 {
		t.Fatalf("params = %v", cfg.params)
	}
}

// TestRunTimeoutPartialStats exercises the CLI abort path: a tiny -timeout
// on a large generated graph must fail with a deadline error yet still
// print the per-run statistics accumulated so far, marked aborted.
func TestRunTimeoutPartialStats(t *testing.T) {
	out, err := captureErr(t, func() error {
		return run(context.Background(), runConfig{
			mode: "dv", progName: "pagerank", gen: "rmat:15:16", seed: 4,
			workers: 2, combine: true, trace: true, timeout: time.Millisecond,
			params: paramFlags{},
		})
	})
	if err == nil {
		t.Fatal("run with 1ms timeout succeeded, want abort")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
	for _, want := range []string{"supersteps:", "wall time:", "aborted:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("partial stats output missing %q:\n%s", want, out)
		}
	}
}

// TestRunCancelledContext checks that an already-cancelled context aborts
// promptly and surfaces context.Canceled.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := captureErr(t, func() error {
		return run(ctx, runConfig{
			mode: "dv", progName: "pagerank", gen: "grid:10:10", seed: 1,
			combine: true, params: paramFlags{},
		})
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
}

// TestRunPanicSurfacesRunError ensures a panic inside the engine comes
// back to the CLI as a structured *pregel.RunError rather than crashing.
func TestRunPanicSurfacesRunError(t *testing.T) {
	// FieldVector with an unknown field errors cleanly (API-boundary check
	// that panics were converted to errors).
	err := run(context.Background(), runConfig{
		mode: "dv", progName: "pagerank", gen: "grid:5:5", seed: 1,
		combine: true, show: "nosuchfield", params: paramFlags{},
	})
	if err == nil || !strings.Contains(err.Error(), "unknown field") {
		t.Fatalf("err = %v, want unknown-field error", err)
	}
	var re *pregel.RunError
	if errors.As(err, &re) {
		t.Fatalf("unknown-field error should not be a RunError: %v", err)
	}
}
