package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	errRun := fn()
	w.Close()
	os.Stdout = old
	buf := make([]byte, 1<<20)
	n, _ := r.Read(buf)
	if errRun != nil {
		t.Fatalf("run: %v", errRun)
	}
	return string(buf[:n])
}

func TestRunSSSPOnGrid(t *testing.T) {
	out := capture(t, func() error {
		return run(runConfig{
			mode: "dv", progName: "sssp", gen: "grid:10:10", seed: 1,
			workers: 2, combine: true, show: "dist", top: 3, trace: true,
			params: paramFlags{"src": 0},
		})
	})
	for _, want := range []string{"graph:", "supersteps:", "top 3 by dist", "superstep  active"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunModesAndPlacement(t *testing.T) {
	for _, mode := range []string{"dv", "dvstar", "memotable"} {
		out := capture(t, func() error {
			return run(runConfig{
				mode: mode, progName: "pagerank", gen: "rmat:7:4", seed: 2,
				workers: 3, hash: true, queue: true, combine: true,
				params: paramFlags{},
			})
		})
		if !strings.Contains(out, "messages:") {
			t.Fatalf("mode %s output missing stats:\n%s", mode, out)
		}
	}
}

func TestRunFromEdgeListFile(t *testing.T) {
	g := graph.Path(6, true)
	f := filepath.Join(t.TempDir(), "g.el")
	fh, err := os.Create(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(fh, g); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	out := capture(t, func() error {
		return run(runConfig{
			mode: "dv", progName: "bfs", edges: f, directed: true,
			combine: true, params: paramFlags{"src": 0}, show: "hop", top: 6,
		})
	})
	if !strings.Contains(out, "top 6 by hop") {
		t.Fatalf("edge-list run output:\n%s", out)
	}
}

func TestRunProgramFile(t *testing.T) {
	f := filepath.Join(t.TempDir(), "p.dv")
	src := "init { local x : float = 1.0 * id };\niter k { let m : float = max [ u.x | u <- #in ] in x = max x m } until { fixpoint }\n"
	if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out := capture(t, func() error {
		return run(runConfig{mode: "dv", file: f, gen: "er:50:150", seed: 3, combine: true, params: paramFlags{}})
	})
	if !strings.Contains(out, "wall time:") {
		t.Fatalf("program file run output:\n%s", out)
	}
}

func TestRunErrorPaths(t *testing.T) {
	bad := []runConfig{
		{mode: "dv", params: paramFlags{}},                                                  // no program
		{mode: "bogus", progName: "sssp", gen: "grid:3:3", params: paramFlags{}},            // bad mode
		{mode: "dv", progName: "sssp", params: paramFlags{}},                                // no graph
		{mode: "dv", progName: "sssp", gen: "bogus:1", params: paramFlags{}},                // bad generator
		{mode: "dv", progName: "nope", gen: "grid:3:3", params: paramFlags{}},               // unknown program
		{mode: "dv", progName: "cc", gen: "rmat:4:2", directed: true, params: paramFlags{}}, // #neighbors on directed
		{mode: "dv", progName: "sssp", gen: "grid:3:3", params: paramFlags{"q": 1}},         // unknown param
		{mode: "dv", progName: "sssp", edges: "/nonexistent", params: paramFlags{}},         // missing file
		{mode: "dv", file: "/nonexistent.dv", gen: "grid:3:3", params: paramFlags{}},
	}
	for i, cfg := range bad {
		if err := run(cfg); err == nil {
			t.Fatalf("case %d: run succeeded, want error", i)
		}
	}
}

func TestParamFlagParsing(t *testing.T) {
	p := paramFlags{}
	if err := p.Set("src=5"); err != nil || p["src"] != 5 {
		t.Fatalf("Set(src=5): %v %v", err, p)
	}
	if err := p.Set("bogus"); err == nil {
		t.Fatal("Set without '=' should fail")
	}
	if err := p.Set("x=abc"); err == nil {
		t.Fatal("Set with non-numeric value should fail")
	}
	if p.String() == "" {
		t.Fatal("String empty")
	}
}
