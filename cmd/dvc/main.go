// Command dvc is the ΔV compiler driver: it parses, type-checks and
// compiles a ΔV program and prints the result of the requested stage.
//
// Usage:
//
//	dvc [-mode dv|dvstar|memotable] [-emit source|compiled|layout|go]
//	    [-epsilon ε] [-vet=false] (-program name | file.dv)
//	dvc vet [-mode m] [-epsilon ε] [-json] [-severity info|warn|error]
//	    [-analyzers a,b,...] (-program name | file.dv)
//	dvc -list
//
// With -emit compiled (the default) it prints the fully transformed
// program in the paper's pseudo-syntax: receive loops, change checks,
// Δ-message sends and halts. -emit go prints generated Go source for the
// vertex program. -program selects one of the embedded benchmark programs
// (see `dvc -list`).
//
// The vet subcommand runs the static-analysis suite of
// internal/deltav/analysis and prints every finding (syntax and type
// errors included) as position-anchored diagnostics, human-readable by
// default or as a JSON report with -json. -severity info|warn|error sets
// the minimum severity shown (info adds the repairability capability
// matrix); -analyzers selects a comma-separated subset of passes. The
// exit status is 1 when any error-severity finding exists, 0 otherwise
// (info findings and warnings do not fail the run), 2 on usage or I/O
// problems.
//
// Compiling with -emit compiled or -emit go vets the program first:
// error findings abort the compile (bypass with -vet=false), warnings go
// to standard error.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/deltav/analysis"
	"repro/internal/deltav/ast"
	"repro/internal/deltav/codegen"
	"repro/internal/deltav/diag"
	"repro/internal/deltav/parser"
	"repro/internal/deltav/vm"
	"repro/internal/programs"
)

// mainFlags are the compile driver's options.
type mainFlags struct {
	mode     *string
	emit     *string
	progName *string
	epsilon  *float64
	list     *bool
	vet      *bool
}

func registerMainFlags(fs *flag.FlagSet) *mainFlags {
	return &mainFlags{
		mode:     fs.String("mode", "dv", "compile mode: dv (incremental), dvstar (baseline), memotable"),
		emit:     fs.String("emit", "compiled", "stage to print: source, compiled, layout, go"),
		progName: fs.String("program", "", "embedded benchmark program name (instead of a file)"),
		epsilon:  fs.Float64("epsilon", 0, "allowable-slop ε for change checks (§9)"),
		list:     fs.Bool("list", false, "list embedded programs and exit"),
		vet:      fs.Bool("vet", true, "run the static-analysis suite before compiling"),
	}
}

// vetFlags are the vet subcommand's options.
type vetFlags struct {
	mode      *string
	epsilon   *float64
	progName  *string
	jsonOut   *bool
	severity  *string
	analyzers *string
}

func registerVetFlags(fs *flag.FlagSet) *vetFlags {
	return &vetFlags{
		mode:      fs.String("mode", "dv", "target compile mode the findings apply to: dv, dvstar, memotable"),
		epsilon:   fs.Float64("epsilon", 0, "allowable-slop ε the program will run with (§9)"),
		progName:  fs.String("program", "", "embedded benchmark program name (instead of a file)"),
		jsonOut:   fs.Bool("json", false, "emit the findings as a JSON report"),
		severity:  fs.String("severity", "warn", "minimum severity to show: info, warn, error"),
		analyzers: fs.String("analyzers", "", "comma-separated analyzer subset (default: all)"),
	}
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "vet" {
		os.Exit(vetMain(os.Args[2:]))
	}
	f := registerMainFlags(flag.CommandLine)
	flag.Parse()

	if *f.list {
		fmt.Println(strings.Join(programs.Names(), "\n"))
		return
	}
	if err := run(f, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "dvc:", err)
		os.Exit(1)
	}
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "dv":
		return core.Incremental, nil
	case "dvstar":
		return core.Baseline, nil
	case "memotable":
		return core.MemoTable, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want dv, dvstar, memotable)", s)
}

// loadSource resolves the single program input: -program name or a file.
func loadSource(progName string, args []string) (string, error) {
	switch {
	case progName != "":
		return programs.Source(progName)
	case len(args) == 1:
		b, err := os.ReadFile(args[0])
		if err != nil {
			return "", err
		}
		return string(b), nil
	}
	return "", fmt.Errorf("need exactly one input file or -program name")
}

// vetMain implements `dvc vet` and returns the process exit code: 0 for
// clean or warnings-only, 1 when error findings exist, 2 on usage or I/O
// problems.
func vetMain(args []string) int {
	fs := flag.NewFlagSet("dvc vet", flag.ExitOnError)
	f := registerVetFlags(fs)
	fs.Parse(args)

	fail := func(err error) int {
		fmt.Fprintln(os.Stderr, "dvc vet:", err)
		return 2
	}
	src, err := loadSource(*f.progName, fs.Args())
	if err != nil {
		return fail(err)
	}
	mode, err := parseMode(*f.mode)
	if err != nil {
		return fail(err)
	}
	minSev, err := diag.ParseSeverity(*f.severity)
	if err != nil {
		return fail(err)
	}
	var passes []*analysis.Analyzer
	if *f.analyzers != "" {
		passes, err = analysis.ByName(strings.Split(*f.analyzers, ","))
		if err != nil {
			return fail(err)
		}
	}

	diags, err := analysis.VetSource(src, analysis.Config{Mode: mode, Epsilon: *f.epsilon}, passes)
	if err != nil {
		// Syntax and type errors are diagnostics too: render them through
		// the same pipeline instead of aborting with a bare message.
		var front diag.List
		if !errors.As(err, &front) {
			return fail(err)
		}
		diags = front
	}
	shown := diags.Filter(minSev)
	if *f.jsonOut {
		fmt.Println(shown.JSON())
	} else {
		for _, d := range shown {
			fmt.Println(d.String())
		}
	}
	if diags.HasErrors() {
		return 1
	}
	return 0
}

func run(f *mainFlags, args []string) error {
	src, err := loadSource(*f.progName, args)
	if err != nil {
		return err
	}
	mode, err := parseMode(*f.mode)
	if err != nil {
		return err
	}
	if *f.emit == "source" {
		prog, err := parser.Parse(src)
		if err != nil {
			return err
		}
		fmt.Print(ast.Print(prog))
		return nil
	}
	if *f.vet && (*f.emit == "compiled" || *f.emit == "go") {
		diags, err := analysis.VetSource(src, analysis.Config{Mode: mode, Epsilon: *f.epsilon}, nil)
		if err != nil {
			return err
		}
		if diags.HasErrors() {
			return fmt.Errorf("vet rejected the program (bypass with -vet=false):\n%s", diags.Error())
		}
		// Info findings (the repairability matrix) are vet-only output;
		// compiling prints warnings and up.
		for _, d := range diags.Filter(diag.Warning) {
			fmt.Fprintln(os.Stderr, "dvc vet:", d.String())
		}
	}
	compiled, err := core.Compile(src, core.Options{Mode: mode, Epsilon: *f.epsilon})
	if err != nil {
		return err
	}
	switch *f.emit {
	case "compiled":
		fmt.Print(compiled.String())
	case "layout":
		fmt.Printf("vertex state: %d bytes\n", compiled.Layout.ByteSize())
		for i, fld := range compiled.Layout.Fields {
			fmt.Printf("  [%d] %-16s %-5s %s\n", i, fld.Name, fld.Type, fld.Kind)
		}
		fmt.Printf("message: %d bytes, %d slot(s)\n", vm.MessageBytes(compiled), compiled.MaxSlotsPerGroup)
	case "go":
		gosrc, err := codegen.Generate(compiled, "main")
		if err != nil {
			return err
		}
		fmt.Print(gosrc)
	default:
		return fmt.Errorf("unknown -emit %q (want source, compiled, layout, go)", *f.emit)
	}
	return nil
}
