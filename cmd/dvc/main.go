// Command dvc is the ΔV compiler driver: it parses, type-checks and
// compiles a ΔV program and prints the result of the requested stage.
//
// Usage:
//
//	dvc [-mode dv|dvstar|memotable] [-emit source|compiled|layout|go] (-program name | file.dv)
//
// With -emit compiled (the default) it prints the fully transformed
// program in the paper's pseudo-syntax: receive loops, change checks,
// Δ-message sends and halts. -emit go prints generated Go source for the
// vertex program. -program selects one of the embedded benchmark programs
// (see `dvc -list`).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/deltav/ast"
	"repro/internal/deltav/codegen"
	"repro/internal/deltav/parser"
	"repro/internal/deltav/vm"
	"repro/internal/programs"
)

func main() {
	mode := flag.String("mode", "dv", "compile mode: dv (incremental), dvstar (baseline), memotable")
	emit := flag.String("emit", "compiled", "stage to print: source, compiled, layout, go")
	progName := flag.String("program", "", "embedded benchmark program name (instead of a file)")
	epsilon := flag.Float64("epsilon", 0, "allowable-slop ε for change checks (§9)")
	list := flag.Bool("list", false, "list embedded programs and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(programs.Names(), "\n"))
		return
	}
	if err := run(*mode, *emit, *progName, *epsilon, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "dvc:", err)
		os.Exit(1)
	}
}

func parseMode(s string) (core.Mode, error) {
	switch s {
	case "dv":
		return core.Incremental, nil
	case "dvstar":
		return core.Baseline, nil
	case "memotable":
		return core.MemoTable, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want dv, dvstar, memotable)", s)
}

func run(modeStr, emit, progName string, epsilon float64, args []string) error {
	var src string
	switch {
	case progName != "":
		var err error
		src, err = programs.Source(progName)
		if err != nil {
			return err
		}
	case len(args) == 1:
		b, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		src = string(b)
	default:
		return fmt.Errorf("need exactly one input file or -program name")
	}

	mode, err := parseMode(modeStr)
	if err != nil {
		return err
	}
	if emit == "source" {
		prog, err := parser.Parse(src)
		if err != nil {
			return err
		}
		fmt.Print(ast.Print(prog))
		return nil
	}
	compiled, err := core.Compile(src, core.Options{Mode: mode, Epsilon: epsilon})
	if err != nil {
		return err
	}
	switch emit {
	case "compiled":
		fmt.Print(compiled.String())
	case "layout":
		fmt.Printf("vertex state: %d bytes\n", compiled.Layout.ByteSize())
		for i, f := range compiled.Layout.Fields {
			fmt.Printf("  [%d] %-16s %-5s %s\n", i, f.Name, f.Type, f.Kind)
		}
		fmt.Printf("message: %d bytes, %d slot(s)\n", vm.MessageBytes(compiled), compiled.MaxSlotsPerGroup)
	case "go":
		gosrc, err := codegen.Generate(compiled, "main")
		if err != nil {
			return err
		}
		fmt.Print(gosrc)
	default:
		return fmt.Errorf("unknown -emit %q (want source, compiled, layout, go)", emit)
	}
	return nil
}
