package main

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/programs"
)

// updateMatrix regenerates the capability-matrix goldens instead of
// comparing against them: the corpus matrix must change deliberately
// (`go test ./cmd/dvc -run VetCapabilityMatrix -update-matrix`), never by
// drift — CI runs the comparison on every push.
var updateMatrix = flag.Bool("update-matrix", false, "rewrite testdata/vet/matrix goldens")

var matrixModes = []string{"dv", "dvstar", "memotable"}

// TestVetCapabilityMatrixGoldens pins the rendered repairability matrix —
// `dvc vet -analyzers repairability -severity info` — for every embedded
// program × mode.
func TestVetCapabilityMatrixGoldens(t *testing.T) {
	bin := buildTool(t, "repro/cmd/dvc")
	for _, name := range programs.Names() {
		for _, mode := range matrixModes {
			name, mode := name, mode
			t.Run(name+"/"+mode, func(t *testing.T) {
				out, err := runTool(t, bin, "vet", "-program", name, "-mode", mode,
					"-severity", "info", "-analyzers", "repairability")
				if err != nil {
					t.Fatalf("vet failed (exit %d):\n%s", exitCode(err), out)
				}
				golden := filepath.Join("testdata", "vet", "matrix", name+"."+mode+".golden")
				if *updateMatrix {
					if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatal(err)
				}
				if out != string(want) {
					t.Fatalf("capability matrix differs from %s (regenerate deliberately with -update-matrix):\n--- got ---\n%s--- want ---\n%s",
						golden, out, want)
				}
			})
		}
	}
}

// TestVetMatrixJSON pins the machine-readable form of the matrix: five
// info findings, one per delta class, each attributed to the
// repairability analyzer.
func TestVetMatrixJSON(t *testing.T) {
	bin := buildTool(t, "repro/cmd/dvc")
	out, err := runTool(t, bin, "vet", "-program", "sssp", "-mode", "memotable",
		"-severity", "info", "-analyzers", "repairability", "-json")
	if err != nil {
		t.Fatal(err, out)
	}
	var rep jsonReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(rep.Diagnostics) != 5 {
		t.Fatalf("diagnostics = %d, want 5:\n%s", len(rep.Diagnostics), out)
	}
	classes := map[string]string{}
	for _, d := range rep.Diagnostics {
		if d.Severity != "info" || d.Code != "repairability" {
			t.Fatalf("diagnostic = %+v", d)
		}
		cls, rest, ok := strings.Cut(d.Message, ": ")
		if !ok {
			t.Fatalf("unparseable matrix message %q", d.Message)
		}
		classes[cls] = rest
	}
	if got := classes["arc-add"]; !strings.Contains(got, "repairable (table-update)") {
		t.Fatalf("arc-add = %q", got)
	}
	if got := classes["weight-loosen"]; !strings.Contains(got, "fallback required") {
		t.Fatalf("weight-loosen = %q", got)
	}
	// The default severity hides the matrix: same invocation minus
	// -severity info reports nothing.
	out, err = runTool(t, bin, "vet", "-program", "sssp", "-mode", "memotable",
		"-analyzers", "repairability")
	if err != nil || strings.TrimSpace(out) != "" {
		t.Fatalf("matrix leaked at default severity: %v\n%s", err, out)
	}
}
