package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildOnce builds the dvc binary for subprocess tests.
func buildTool(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tool")
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = findModuleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func findModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found")
		}
		dir = parent
	}
}

func runTool(t *testing.T, bin string, args ...string) (string, error) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	return string(out), err
}

func TestDVC(t *testing.T) {
	bin := buildTool(t, "repro/cmd/dvc")

	t.Run("list", func(t *testing.T) {
		out, err := runTool(t, bin, "-list")
		if err != nil {
			t.Fatal(err, out)
		}
		for _, want := range []string{"pagerank", "sssp", "cc", "hits"} {
			if !strings.Contains(out, want) {
				t.Fatalf("-list missing %q:\n%s", want, out)
			}
		}
	})
	t.Run("emit-compiled", func(t *testing.T) {
		out, err := runTool(t, bin, "-program", "pagerank", "-emit", "compiled")
		if err != nil {
			t.Fatal(err, out)
		}
		for _, want := range []string{"delta<0>(pr)", "$dirty_g0", "halt"} {
			if !strings.Contains(out, want) {
				t.Fatalf("compiled output missing %q:\n%s", want, out)
			}
		}
	})
	t.Run("emit-source-roundtrip", func(t *testing.T) {
		out, err := runTool(t, bin, "-program", "sssp", "-emit", "source")
		if err != nil {
			t.Fatal(err, out)
		}
		if !strings.Contains(out, "min [ u.dist + ew | u <- #in ]") {
			t.Fatalf("source output unexpected:\n%s", out)
		}
	})
	t.Run("emit-layout", func(t *testing.T) {
		out, err := runTool(t, bin, "-program", "pagerank", "-emit", "layout")
		if err != nil {
			t.Fatal(err, out)
		}
		if !strings.Contains(out, "vertex state: 48 bytes") {
			t.Fatalf("layout output unexpected:\n%s", out)
		}
	})
	t.Run("emit-go", func(t *testing.T) {
		out, err := runTool(t, bin, "-program", "pagerank", "-emit", "go", "-mode", "dvstar")
		if err != nil {
			t.Fatal(err, out)
		}
		if !strings.Contains(out, "func ComputePhase0") {
			t.Fatalf("go output unexpected:\n%s", out)
		}
	})
	t.Run("file-input", func(t *testing.T) {
		f := filepath.Join(t.TempDir(), "p.dv")
		src := "init { local x : float = 1.0 };\nstep { x = + [ u.x | u <- #in ] }\n"
		if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		out, err := runTool(t, bin, "-emit", "compiled", f)
		if err != nil {
			t.Fatal(err, out)
		}
		if !strings.Contains(out, "site 0") {
			t.Fatalf("file compile output unexpected:\n%s", out)
		}
	})
	t.Run("errors", func(t *testing.T) {
		for _, args := range [][]string{
			{"-program", "nope"},
			{"-mode", "bogus", "-program", "pagerank"},
			{"-emit", "bogus", "-program", "pagerank"},
			{}, // no input
		} {
			if out, err := runTool(t, bin, args...); err == nil {
				t.Fatalf("dvc %v succeeded, want error:\n%s", args, out)
			}
		}
	})
}
