package main

import (
	"encoding/json"
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/programs"
)

// intendedMode maps each embedded program to the compile mode its
// min/max usage requires: idempotent aggregations are rejected under
// -mode dv by the invertibility analyzer, so those programs target the
// §4.2.1 memo-table scheme. Mirrors the CI vet gate.
func intendedMode(name string) string {
	switch name {
	case "bfs", "cc", "maxval", "sssp", "twophase", "wcc":
		return "memotable"
	}
	return "dv"
}

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}

// TestVetCorpusGoldens pins `dvc vet` output for every embedded program
// under its intended mode. Every program must be free of error findings;
// warnings are pinned in the goldens (only prod carries one).
func TestVetCorpusGoldens(t *testing.T) {
	bin := buildTool(t, "repro/cmd/dvc")
	for _, name := range programs.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			out, err := runTool(t, bin, "vet", "-program", name, "-mode", intendedMode(name))
			if err != nil {
				t.Fatalf("vet failed (exit %d):\n%s", exitCode(err), out)
			}
			golden := filepath.Join("testdata", "vet", name+".golden")
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if out != string(want) {
				t.Fatalf("vet output differs from %s:\n--- got ---\n%s--- want ---\n%s", golden, out, want)
			}
		})
	}
}

type jsonReport struct {
	Diagnostics []struct {
		Pos        struct{ Line, Col int } `json:"pos"`
		Severity   string                  `json:"severity"`
		Code       string                  `json:"code"`
		Message    string                  `json:"message"`
		Suggestion string                  `json:"suggestion"`
	} `json:"diagnostics"`
}

func TestVetJSON(t *testing.T) {
	bin := buildTool(t, "repro/cmd/dvc")

	t.Run("clean-program-empty-report", func(t *testing.T) {
		out, err := runTool(t, bin, "vet", "-program", "pagerank", "-json")
		if err != nil {
			t.Fatal(err, out)
		}
		var rep jsonReport
		if err := json.Unmarshal([]byte(out), &rep); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, out)
		}
		if len(rep.Diagnostics) != 0 {
			t.Fatalf("pagerank diagnostics = %+v, want none", rep.Diagnostics)
		}
	})
	t.Run("invertibility-error-structured", func(t *testing.T) {
		out, err := runTool(t, bin, "vet", "-program", "maxval", "-mode", "dv", "-json")
		if ec := exitCode(err); ec != 1 {
			t.Fatalf("exit = %d, want 1\n%s", ec, out)
		}
		var rep jsonReport
		if err := json.Unmarshal([]byte(out), &rep); err != nil {
			t.Fatalf("bad JSON: %v\n%s", err, out)
		}
		if len(rep.Diagnostics) != 1 {
			t.Fatalf("diagnostics = %+v, want 1", rep.Diagnostics)
		}
		d := rep.Diagnostics[0]
		if d.Severity != "error" || d.Code != "invertibility" ||
			d.Pos.Line == 0 || d.Pos.Col == 0 ||
			!strings.Contains(d.Suggestion, "-mode memotable") {
			t.Fatalf("diagnostic = %+v", d)
		}
	})
}

func TestVetRejectsBeforeEmit(t *testing.T) {
	bin := buildTool(t, "repro/cmd/dvc")
	out, err := runTool(t, bin, "-program", "maxval", "-mode", "dv", "-emit", "compiled")
	if err == nil {
		t.Fatalf("compile of maxval under dv succeeded, want vet rejection:\n%s", out)
	}
	for _, want := range []string{"invertibility", "-mode memotable", "-vet=false"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rejection missing %q:\n%s", want, out)
		}
	}
	out, err = runTool(t, bin, "-program", "maxval", "-mode", "dv", "-emit", "compiled", "-vet=false")
	if err != nil {
		t.Fatalf("-vet=false bypass failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "mode: dV") {
		t.Fatalf("bypassed compile output unexpected:\n%s", out)
	}
	// -emit source and -emit layout never vet.
	if out, err := runTool(t, bin, "-program", "maxval", "-mode", "dv", "-emit", "source"); err != nil {
		t.Fatalf("-emit source should not vet: %v\n%s", err, out)
	}
}

// TestVetMultipleTypeErrors pins the acceptance criterion: a program with
// two type errors reports both findings, each with a line:col position.
func TestVetMultipleTypeErrors(t *testing.T) {
	bin := buildTool(t, "repro/cmd/dvc")
	f := filepath.Join(t.TempDir(), "bad.dv")
	src := "init { local x : int = 1.5;\nlocal y : bool = not 3 };\nstep { x = 1 }\n"
	if err := os.WriteFile(f, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := runTool(t, bin, "vet", f)
	if ec := exitCode(err); ec != 1 {
		t.Fatalf("exit = %d, want 1\n%s", ec, out)
	}
	for _, want := range []string{
		"1:8: error[typecheck]: local x : int initialized with float",
		"2:18: error[typecheck]: not applied to int",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	// The same two findings, structured.
	out, _ = runTool(t, bin, "vet", "-json", f)
	var rep jsonReport
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if len(rep.Diagnostics) != 2 || rep.Diagnostics[0].Pos.Line != 1 || rep.Diagnostics[1].Pos.Line != 2 {
		t.Fatalf("JSON diagnostics = %+v, want two positioned errors", rep.Diagnostics)
	}
}

func TestVetSeverityFilter(t *testing.T) {
	bin := buildTool(t, "repro/cmd/dvc")
	// prod has one warning; -severity error hides it but keeps exit 0.
	out, err := runTool(t, bin, "vet", "-program", "prod", "-severity", "error")
	if err != nil || strings.TrimSpace(out) != "" {
		t.Fatalf("severity-filtered vet = %v:\n%s", err, out)
	}
	out, err = runTool(t, bin, "vet", "-program", "prod")
	if err != nil || !strings.Contains(out, "warn[initonly]") {
		t.Fatalf("unfiltered vet = %v:\n%s", err, out)
	}
}

func TestVetAnalyzersFlag(t *testing.T) {
	bin := buildTool(t, "repro/cmd/dvc")
	// Restricting to an unrelated analyzer suppresses the maxval error.
	out, err := runTool(t, bin, "vet", "-program", "maxval", "-mode", "dv", "-analyzers", "shadow")
	if err != nil || strings.TrimSpace(out) != "" {
		t.Fatalf("restricted vet = %v:\n%s", err, out)
	}
	out, err = runTool(t, bin, "vet", "-program", "maxval", "-analyzers", "bogus")
	if ec := exitCode(err); ec != 2 || !strings.Contains(out, "unknown analyzer") {
		t.Fatalf("bogus analyzer: exit %d:\n%s", ec, out)
	}
}

func TestListSorted(t *testing.T) {
	bin := buildTool(t, "repro/cmd/dvc")
	out, err := runTool(t, bin, "-list")
	if err != nil {
		t.Fatal(err, out)
	}
	names := strings.Fields(strings.TrimSpace(out))
	if !sort.StringsAreSorted(names) {
		t.Fatalf("-list not sorted: %v", names)
	}
	if len(names) != len(programs.Names()) {
		t.Fatalf("-list = %v, want %v", names, programs.Names())
	}
}

// TestDocCommentListsAllFlags keeps the package doc comment in sync with
// the actual flags of both the compile driver and the vet subcommand.
func TestDocCommentListsAllFlags(t *testing.T) {
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	doc, _, ok := strings.Cut(string(src), "\npackage main")
	if !ok {
		t.Fatal("package clause not found")
	}
	check := func(fs *flag.FlagSet) {
		fs.VisitAll(func(fl *flag.Flag) {
			if !strings.Contains(doc, "-"+fl.Name) {
				t.Errorf("doc comment does not mention -%s", fl.Name)
			}
		})
	}
	mainFS := flag.NewFlagSet("dvc", flag.ContinueOnError)
	registerMainFlags(mainFS)
	check(mainFS)
	vetFS := flag.NewFlagSet("dvc vet", flag.ContinueOnError)
	registerVetFlags(vetFS)
	check(vetFS)
	if !strings.Contains(doc, "dvc vet") {
		t.Error("doc comment does not document the vet subcommand")
	}
}
