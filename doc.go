// Package repro is a from-scratch Go reproduction of "Automatic
// Incrementalization of Vertex-Centric Programs" (Zakian, Capelli, Hu):
// the ΔV language, the incrementalizing compiler, a Pregel-style BSP
// engine, handwritten Pregel+-style baselines, and a benchmark harness
// that regenerates every table and figure of the paper's evaluation.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the paper-vs-measured comparison. The root-level
// bench_test.go regenerates Table 1, Table 2, Figure 4 and Figure 5 as
// testing.B benchmarks.
package repro
